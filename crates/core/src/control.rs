//! Runtime error-threshold control.
//!
//! §1: the error threshold "can be determined by the compiler or annotated by
//! the programmer and **can be dynamically adjusted at run time**". §2.2 adds
//! that approximable applications still need QoS guarantees and cites Rumba's
//! online quality management. [`QualityController`] is that loop: it watches
//! the realized output/data quality and adjusts the threshold percentage —
//! additive-increase when quality has slack, multiplicative-decrease when the
//! QoS floor is violated — so the network harvests as much approximation as
//! the application's quality budget allows.
//!
//! [`FlowControllerBank`] scales the loop to a network: one controller per
//! *flow* (source NI × destination class), each fed by the delivered-word
//! auditor on a deterministic epoch schedule (DESIGN.md §12). Flows whose
//! data tolerates approximation drift toward the threshold ceiling while
//! fragile flows tighten, which is exactly the per-flow headroom a single
//! global threshold cannot harvest.

use crate::data::CacheBlock;
use crate::metrics::QualityAccumulator;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::threshold::ErrorThreshold;

/// An AIMD controller for the runtime error threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityController {
    target_quality: f64,
    percent: u32,
    min_percent: u32,
    max_percent: u32,
    /// Additive step (percentage points) when quality has slack.
    step_up: u32,
    /// Epochs to hold after a multiplicative decrease before the additive
    /// path may grow again (anti-windup, see [`observe_epoch`]).
    ///
    /// [`observe_epoch`]: Self::observe_epoch
    cooldown: u32,
}

impl QualityController {
    /// Creates a controller holding realized quality above `target_quality`
    /// (e.g. `0.97`), starting from `initial_percent` and confined to
    /// `[min_percent, max_percent]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < target_quality <= 1.0` and
    /// `min_percent <= initial_percent <= max_percent <= 100`.
    pub fn new(
        target_quality: f64,
        initial_percent: u32,
        min_percent: u32,
        max_percent: u32,
    ) -> Self {
        assert!(
            target_quality > 0.0 && target_quality <= 1.0,
            "quality target must be in (0, 1]"
        );
        assert!(
            min_percent <= initial_percent && initial_percent <= max_percent && max_percent <= 100,
            "threshold bounds must satisfy min <= initial <= max <= 100"
        );
        QualityController {
            target_quality,
            percent: initial_percent,
            min_percent,
            max_percent,
            step_up: 2,
            cooldown: 0,
        }
    }

    /// The paper's defaults: hold data quality above 97% (its Figure 9
    /// observation), thresholds between 1% and 20%, starting at 10%.
    pub fn paper_defaults() -> Self {
        QualityController::new(0.97, 10, 1, 20)
    }

    /// The current threshold percentage.
    pub fn percent(&self) -> u32 {
        self.percent
    }

    /// The current threshold object (`exact` when driven to 0 — cannot
    /// happen with `min_percent >= 1`).
    pub fn threshold(&self) -> ErrorThreshold {
        // Percent is clamped into 1..=100, so this never falls back; exact
        // (no approximation) is the conservative default if it ever did.
        ErrorThreshold::from_percent(self.percent.max(1))
            .unwrap_or_else(|_| ErrorThreshold::exact())
    }

    /// The quality floor being enforced.
    pub fn target_quality(&self) -> f64 {
        self.target_quality
    }

    /// Feeds one epoch's realized quality (`1 - mean relative error`, or an
    /// application-level accuracy) and returns the threshold for the next
    /// epoch. AIMD: halve on violation, step up gently when there is slack.
    pub fn observe(&mut self, realized_quality: f64) -> ErrorThreshold {
        if realized_quality < self.target_quality {
            self.percent = (self.percent / 2).max(self.min_percent);
        } else {
            // Only grow when there is real headroom, to avoid oscillating on
            // the floor.
            let slack = realized_quality - self.target_quality;
            if slack > (1.0 - self.target_quality) * 0.25 {
                self.percent = (self.percent + self.step_up).min(self.max_percent);
            }
        }
        self.threshold()
    }

    /// The epoch form of [`observe`](Self::observe) used by the per-flow
    /// loop, with two anti-windup guards the plain AIMD law lacks:
    ///
    /// * an epoch carrying fewer than `min_words` audited words holds the
    ///   threshold — a handful of words is noise, not evidence, and acting
    ///   on it makes sparse flows oscillate between the rails;
    /// * a violation arms a one-epoch cooldown, so a full clean epoch must
    ///   pass before the additive path may grow again. Without it the
    ///   controller re-inflates off quality that was realized *before* the
    ///   decrease took effect (packets already in flight), then halves
    ///   again — a limit cycle, not convergence.
    pub fn observe_epoch(
        &mut self,
        realized_quality: f64,
        words: u64,
        min_words: u64,
    ) -> ErrorThreshold {
        if words < min_words {
            return self.threshold();
        }
        if realized_quality < self.target_quality {
            self.percent = (self.percent / 2).max(self.min_percent);
            self.cooldown = 1;
        } else if self.cooldown > 0 {
            self.cooldown -= 1;
        } else {
            let slack = realized_quality - self.target_quality;
            if slack > (1.0 - self.target_quality) * 0.25 {
                self.percent = (self.percent + self.step_up).min(self.max_percent);
            }
        }
        self.threshold()
    }

    /// Serializes the mutable controller state (the configuration — target,
    /// bounds, step — is rebuilt from the [`QosSpec`] on arming).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.u32(self.percent);
        w.u32(self.cooldown);
    }

    /// Restores state written by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let percent = r.u32()?;
        if percent < self.min_percent || percent > self.max_percent {
            return Err(SnapError::Invalid("controller percent out of bounds"));
        }
        self.percent = percent;
        self.cooldown = r.u32()?;
        Ok(())
    }
}

impl Default for QualityController {
    fn default() -> Self {
        QualityController::paper_defaults()
    }
}

/// Configuration of the per-flow QoS loop. All-integer (the quality target
/// travels as parts-per-million) so the spec is `Eq + Hash` and renders
/// exactly into result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QosSpec {
    /// Quality floor in parts-per-million (970_000 = hold quality ≥ 0.97).
    pub target_quality_ppm: u32,
    /// Control epoch length in cycles; 0 disables the loop entirely.
    pub epoch_cycles: u64,
    /// Threshold percentage every flow starts from.
    pub initial_percent: u32,
    /// Floor of the per-flow threshold.
    pub min_percent: u32,
    /// Ceiling of the per-flow threshold (the bound checker of a QoS run is
    /// armed here: no flow may ever approximate past it).
    pub max_percent: u32,
    /// Number of destination classes per source NI (flow = source ×
    /// `dest % classes`).
    pub classes: u32,
    /// Minimum audited words per epoch before a flow's controller acts
    /// (anti-windup on sparse flows).
    pub min_words: u64,
}

impl QosSpec {
    /// The inert spec: no epochs, no controllers, zero behavioral footprint.
    pub fn off() -> Self {
        QosSpec {
            target_quality_ppm: 0,
            epoch_cycles: 0,
            initial_percent: 0,
            min_percent: 0,
            max_percent: 0,
            classes: 0,
            min_words: 0,
        }
    }

    /// The defaults the `anoc run qos` campaign uses: hold per-flow data
    /// quality above 97% (the paper's Figure 9 observation), thresholds in
    /// 1..=20% starting at 10%, 4 destination classes, 500-cycle epochs.
    pub fn paper(target_quality_ppm: u32) -> Self {
        QosSpec {
            target_quality_ppm,
            epoch_cycles: 500,
            initial_percent: 10,
            min_percent: 1,
            max_percent: 20,
            classes: 4,
            min_words: 64,
        }
    }

    /// Whether the loop is armed at all.
    pub fn is_active(&self) -> bool {
        self.epoch_cycles > 0
    }

    /// The quality floor as a fraction.
    pub fn target_quality(&self) -> f64 {
        f64::from(self.target_quality_ppm) / 1e6
    }

    /// The canonical rendering for result-cache keys. Every field appears:
    /// two specs with any differing knob must never share a cached cell.
    pub fn key_fragment(&self) -> String {
        format!(
            "qt={} qe={} qi={} qlo={} qhi={} qc={} qw={}",
            self.target_quality_ppm,
            self.epoch_cycles,
            self.initial_percent,
            self.min_percent,
            self.max_percent,
            self.classes,
            self.min_words,
        )
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::off()
    }
}

/// One flow's slot in the bank: its controller plus the quality evidence
/// accumulated over the current epoch.
#[derive(Debug, Clone, PartialEq)]
struct FlowState {
    controller: QualityController,
    epoch: QualityAccumulator,
}

/// The per-flow QoS control plane: one [`QualityController`] per
/// (source NI, destination class) pair, fed by the delivered-word auditor
/// and stepped on a fixed epoch schedule.
///
/// Determinism contract (DESIGN.md §12): the bank is only ever mutated from
/// the serial section of the simulator's cycle edge — observation happens at
/// packet completion (ejections are processed in canonical router order) and
/// the epoch update walks flows in ascending index order — so its trajectory
/// is bit-identical across worker-thread and shard counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowControllerBank {
    spec: QosSpec,
    nodes: usize,
    flows: Vec<FlowState>,
}

impl FlowControllerBank {
    /// A bank of `nodes × spec.classes` controllers, each starting from the
    /// spec's initial threshold.
    ///
    /// # Panics
    ///
    /// Panics on an inactive spec or one whose bounds the underlying
    /// controller rejects.
    pub fn new(nodes: usize, spec: QosSpec) -> Self {
        assert!(spec.is_active(), "cannot build a bank from an inert spec");
        assert!(spec.classes > 0, "a bank needs at least one class");
        let proto = QualityController::new(
            spec.target_quality(),
            spec.initial_percent,
            spec.min_percent,
            spec.max_percent,
        );
        let flows = vec![
            FlowState {
                controller: proto,
                epoch: QualityAccumulator::new(),
            };
            nodes * spec.classes as usize
        ];
        FlowControllerBank { spec, nodes, flows }
    }

    /// The spec the bank was built from.
    pub fn spec(&self) -> &QosSpec {
        &self.spec
    }

    /// The destination class of `dest`.
    pub fn class_of(&self, dest: usize) -> usize {
        dest % self.spec.classes as usize
    }

    fn flow_index(&self, src: usize, dest: usize) -> usize {
        src * self.spec.classes as usize + self.class_of(dest)
    }

    /// Feeds one delivered block (precise golden copy vs what arrived) into
    /// the owning flow's epoch accumulator.
    pub fn observe_block(
        &mut self,
        src: usize,
        dest: usize,
        precise: &CacheBlock,
        approx: &CacheBlock,
    ) {
        let i = self.flow_index(src, dest);
        self.flows[i].epoch.record_block(precise, approx);
    }

    /// Whether `cycle` is an epoch boundary. Purely arithmetic — the
    /// schedule carries no randomness, which is what keeps the loop
    /// bit-identical across `--threads` and `--shards`.
    pub fn epoch_due(&self, cycle: u64) -> bool {
        cycle > 0 && cycle.is_multiple_of(self.spec.epoch_cycles)
    }

    /// Runs one control epoch: every flow observes its accumulated quality
    /// (in ascending flow order) and resets its accumulator.
    pub fn run_epoch(&mut self) {
        for f in &mut self.flows {
            let q = f.epoch.quality();
            let words = f.epoch.words();
            f.controller.observe_epoch(q, words, self.spec.min_words);
            f.epoch = QualityAccumulator::new();
        }
    }

    /// The threshold the flow `(src, dest-class)` currently demands.
    pub fn threshold_for(&self, src: usize, dest: usize) -> ErrorThreshold {
        self.flows[self.flow_index(src, dest)]
            .controller
            .threshold()
    }

    /// The flow's current threshold percentage (the cheap equality probe the
    /// lazy-install path compares before rewriting an encoder).
    pub fn percent_for(&self, src: usize, dest: usize) -> u32 {
        self.flows[self.flow_index(src, dest)].controller.percent()
    }

    /// Iterates `(flow_index, percent)` in ascending flow order (reporting).
    pub fn percents(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.controller.percent()))
    }

    /// Serializes every flow's controller state and in-flight epoch
    /// evidence.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.flows.len());
        for f in &self.flows {
            f.controller.save_state(w);
            w.u64(f.epoch.words());
            w.f64_bits(f.epoch.error_sum());
            w.f64_bits(f.epoch.max_relative_error());
        }
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// bank armed with the same spec and node count.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.flows.len() {
            return Err(SnapError::Invalid("flow count mismatch"));
        }
        for f in &mut self.flows {
            f.controller.load_state(r)?;
            let words = r.u64()?;
            let sum = r.f64_bits()?;
            let max = r.f64_bits()?;
            f.epoch = QualityAccumulator::from_raw(words, sum, max);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_halves_the_threshold() {
        let mut c = QualityController::paper_defaults();
        assert_eq!(c.percent(), 10);
        c.observe(0.90); // below the 0.97 floor
        assert_eq!(c.percent(), 5);
        c.observe(0.90);
        assert_eq!(c.percent(), 2);
        c.observe(0.50);
        c.observe(0.50);
        assert_eq!(c.percent(), 1, "clamped at the minimum");
    }

    #[test]
    fn slack_grows_the_threshold_gently() {
        let mut c = QualityController::paper_defaults();
        for _ in 0..20 {
            c.observe(0.999); // lots of headroom
        }
        assert_eq!(c.percent(), 20, "clamped at the maximum");
    }

    #[test]
    fn near_target_quality_holds_steady() {
        let mut c = QualityController::paper_defaults();
        for _ in 0..10 {
            c.observe(0.975); // above floor, within the no-grow band
        }
        assert_eq!(c.percent(), 10);
    }

    #[test]
    fn converges_under_a_simple_plant() {
        // A toy plant where realized quality = 1 - percent/200 (i.e. 20%
        // threshold -> 0.90 quality): the controller must settle where
        // quality ~ target.
        let mut c = QualityController::new(0.96, 20, 1, 40);
        let mut pct = c.percent();
        for _ in 0..50 {
            let quality = 1.0 - pct as f64 / 200.0;
            pct = c.observe(quality).percent();
        }
        let final_quality = 1.0 - pct as f64 / 200.0;
        assert!(
            final_quality >= 0.955,
            "settled at {pct}% -> quality {final_quality}"
        );
        assert!(pct >= 4, "should not collapse to the minimum: {pct}");
    }

    #[test]
    fn threshold_object_matches_percent() {
        let c = QualityController::paper_defaults();
        assert_eq!(c.threshold().percent(), 10);
        assert_eq!(c.target_quality(), 0.97);
        assert_eq!(QualityController::default(), c);
    }

    #[test]
    #[should_panic(expected = "quality target")]
    fn bad_target_rejected() {
        let _ = QualityController::new(0.0, 10, 1, 20);
    }

    #[test]
    #[should_panic(expected = "threshold bounds")]
    fn bad_bounds_rejected() {
        let _ = QualityController::new(0.97, 30, 1, 20);
    }

    #[test]
    fn sparse_epochs_hold_the_threshold() {
        let mut c = QualityController::paper_defaults();
        // Catastrophic quality, but only 3 audited words: not evidence.
        c.observe_epoch(0.10, 3, 64);
        assert_eq!(c.percent(), 10, "sparse epoch must not move the knob");
        c.observe_epoch(0.10, 64, 64);
        assert_eq!(c.percent(), 5, "a full epoch acts");
    }

    #[test]
    fn cooldown_blocks_growth_for_one_epoch_after_a_violation() {
        let mut c = QualityController::paper_defaults();
        c.observe_epoch(0.90, 100, 1); // violation: 10 -> 5, cooldown armed
        assert_eq!(c.percent(), 5);
        c.observe_epoch(0.999, 100, 1); // slack, but cooling down: hold
        assert_eq!(c.percent(), 5, "cooldown epoch must not grow");
        c.observe_epoch(0.999, 100, 1); // clean epoch passed: grow again
        assert_eq!(c.percent(), 7);
    }

    #[test]
    fn controller_state_round_trips() {
        let mut c = QualityController::paper_defaults();
        c.observe_epoch(0.90, 100, 1);
        let mut w = SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = QualityController::paper_defaults();
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).expect("load");
        assert!(r.is_exhausted());
        assert_eq!(fresh, c);
        // Out-of-bounds percent is a typed error, not silent acceptance.
        let mut w = SnapWriter::new();
        w.u32(99);
        w.u32(0);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(fresh.load_state(&mut r).is_err());
    }

    #[test]
    fn qos_spec_activity_and_key() {
        assert!(!QosSpec::off().is_active());
        assert_eq!(QosSpec::default(), QosSpec::off());
        let spec = QosSpec::paper(970_000);
        assert!(spec.is_active());
        assert!((spec.target_quality() - 0.97).abs() < 1e-12);
        let mut other = spec;
        other.min_words += 1;
        assert_ne!(spec.key_fragment(), other.key_fragment());
        for field in ["qt=", "qe=", "qi=", "qlo=", "qhi=", "qc=", "qw="] {
            assert!(spec.key_fragment().contains(field), "{field} missing");
        }
    }

    #[test]
    fn bank_controls_flows_independently() {
        let spec = QosSpec::paper(970_000);
        let mut bank = FlowControllerBank::new(2, spec);
        assert_eq!(bank.percent_for(0, 0), 10);
        // Flow (0, class 0) sees bad quality, flow (1, class 1) sees slack.
        let good = CacheBlock::from_i32(&[100; 8]);
        let bad = CacheBlock::from_i32(&[160; 8]);
        for _ in 0..16 {
            bank.observe_block(0, 4, &good, &bad); // dest 4 -> class 0
            bank.observe_block(1, 5, &good, &good); // dest 5 -> class 1
        }
        bank.run_epoch();
        assert_eq!(bank.percent_for(0, 4), 5, "violating flow halves");
        assert_eq!(bank.percent_for(1, 5), 12, "slack flow grows");
        assert_eq!(bank.percent_for(0, 1), 10, "idle flow holds");
        assert_eq!(bank.threshold_for(0, 4).percent(), 5);
        assert_eq!(bank.percents().count(), 8);
    }

    #[test]
    fn bank_epoch_schedule_is_pure_arithmetic() {
        let bank = FlowControllerBank::new(1, QosSpec::paper(970_000));
        assert!(!bank.epoch_due(0));
        assert!(bank.epoch_due(500));
        assert!(!bank.epoch_due(501));
        assert!(bank.epoch_due(1_000));
    }

    #[test]
    fn bank_state_round_trips_and_rejects_mismatched_geometry() {
        let spec = QosSpec::paper(970_000);
        let mut bank = FlowControllerBank::new(2, spec);
        let good = CacheBlock::from_i32(&[100; 8]);
        let bad = CacheBlock::from_i32(&[130; 8]);
        for _ in 0..16 {
            bank.observe_block(0, 0, &good, &bad);
        }
        bank.run_epoch();
        bank.observe_block(1, 3, &good, &bad); // in-flight epoch evidence
        let mut w = SnapWriter::new();
        bank.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = FlowControllerBank::new(2, spec);
        let mut r = SnapReader::new(&bytes);
        fresh.load_state(&mut r).expect("load");
        assert!(r.is_exhausted());
        assert_eq!(fresh, bank);
        // A bank armed for a different node count must refuse the blob.
        let mut wrong = FlowControllerBank::new(4, spec);
        let mut r = SnapReader::new(&bytes);
        assert!(wrong.load_state(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "inert spec")]
    fn bank_rejects_inert_spec() {
        let _ = FlowControllerBank::new(4, QosSpec::off());
    }
}
