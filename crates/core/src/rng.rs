//! A small deterministic random number generator (PCG-XSH-RR 64/32).
//!
//! The whole simulation stack must be a pure function of `(config, seed)` so
//! experiments are bit-reproducible; depending on an external `rand` version
//! would tie reproducibility to upstream API/algorithm churn. PCG32 is tiny,
//! statistically solid for simulation workloads, and trivially seedable.

/// A PCG-XSH-RR 64/32 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream id. Different stream ids
    /// yield independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator on the default stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Pcg32::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// The raw `(state, stream increment)` pair, for snapshotting a
    /// generator mid-sequence.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from [`state_parts`](Self::state_parts). The
    /// restored generator continues the original sequence exactly; this is a
    /// resume, not a reseed, so it is exempt from the rng-site discipline
    /// (the original construction site already justified its determinism).
    pub fn from_state_parts(state: u64, inc: u64) -> Self {
        Pcg32 { state, inc }
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// A uniformly distributed integer in `[0, bound)` (Lemire's method,
    /// bias-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// A uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Geometric-ish exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.f64()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "cannot choose from an empty slice");
        &xs[self.below(xs.len() as u32) as usize]
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// weights. Falls back to a uniform pick if all weights are zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.below(weights.len() as u32) as usize;
        }
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_parts_resume_mid_sequence() {
        let mut a = Pcg32::new(99, 7);
        for _ in 0..37 {
            a.next_u32();
        }
        let (state, inc) = a.state_parts();
        let mut b = Pcg32::from_state_parts(state, inc);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg32::seed_from_u64(1);
        for bound in [1u32, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "count {c} outside tolerance");
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Pcg32::seed_from_u64(17);
        let w = [0.0, 0.9, 0.1];
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
        // degenerate all-zero weights fall back to uniform
        let z = [0.0, 0.0];
        let i = rng.weighted_index(&z);
        assert!(i < 2);
    }

    #[test]
    fn range_and_choose() {
        let mut rng = Pcg32::seed_from_u64(23);
        for _ in 0..100 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
        let xs = [1, 2, 3];
        assert!(xs.contains(rng.choose(&xs)));
        assert!(rng.exponential(5.0) >= 0.0);
        let s = rng.normal_with(10.0, 0.0);
        assert_eq!(s, 10.0);
    }
}
