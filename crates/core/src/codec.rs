//! Block codec traits and the encoded network representation (NR).
//!
//! The encoder in the source NI compresses each word of a cache block into a
//! [`WordCode`]; the resulting [`EncodedBlock`] is the intermediate network
//! representation that gets packetized, fragmented into flits and injected
//! (Figure 3). At the destination the decoder reverses the mapping —
//! approximately, if VAXX substituted reference patterns.
//!
//! Dictionary-based mechanisms additionally exchange [`Notification`]s:
//! decoders detect recurring patterns and notify the paired encoder of new
//! encoded indices, or of invalidations on replacement (Figure 7).

use crate::data::{CacheBlock, DataType, NodeId};

/// One word of the network representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordCode {
    /// Word transmitted verbatim, plus `prefix_bits` of "uncompressed" tag.
    Raw {
        /// The verbatim 32-bit word.
        word: u32,
        /// Tag overhead in bits (3 for FPC's `111` prefix, 1 for dictionary
        /// schemes' miss flag).
        prefix_bits: u8,
    },
    /// Frequent-pattern hit: a 3-bit pattern index plus a variable-length
    /// adjunct carrying the significant bits (Figure 5).
    Pattern {
        /// Index into the static frequent-pattern table (0..=7).
        index: u8,
        /// The adjunct data bits accompanying the index.
        adjunct: u32,
        /// Width of the adjunct in bits (0, 4, 8 or 16).
        adjunct_bits: u8,
        /// Whether VAXX approximation enabled this hit.
        approx: bool,
    },
    /// A run of consecutive all-zero words, merged into one code with a
    /// 3-bit run length (FPC's `000` row in Figure 5).
    ZeroRun {
        /// Number of zero words covered (1..=8).
        len: u8,
    },
    /// Base-delta encoding: the word travels as a narrow signed delta from
    /// the block's base word (Zhan et al., ASP-DAC'14 — the BDI extension).
    Delta {
        /// The signed delta from the base (simulation metadata; the wire
        /// carries `delta_bits` of it).
        delta: i32,
        /// Width of the delta field in bits (0 for a repeated word).
        delta_bits: u8,
        /// Whether VAXX approximation enabled this delta to fit.
        approx: bool,
    },
    /// LZ back-reference (LZ-VAXX): copies `len` words starting `distance`
    /// words back in the reconstruction window (static seed dictionary +
    /// already-decoded words of the same block). The distance may be shorter
    /// than the length, in which case the copy overlaps itself and expresses
    /// a run. Matching across word boundaries is what distinguishes this
    /// mechanism from the per-word FP/DI tables.
    Match {
        /// Backward distance in words (1-based) into the window.
        distance: u16,
        /// Number of source words covered (1..=8).
        len: u8,
        /// Wire width of the distance field: short after MTF recency ranking
        /// promoted this distance, full width otherwise.
        dist_bits: u8,
        /// Whether any covered word was accepted through a VAXX don't-care
        /// mask rather than an exact compare.
        approx: bool,
    },
    /// Dictionary hit: an encoded index the paired decoder can resolve.
    Dict {
        /// The encoded index previously announced by the decoder.
        index: u8,
        /// Width of the index field in bits (log2 of the PMT size).
        index_bits: u8,
        /// Whether the hit went through the approximate (TCAM) path.
        approx: bool,
        /// Simulation metadata (not counted on the wire): the value this
        /// index resolves to at the paired decoder when the packet was
        /// encoded. The dictionary consistency protocol (update/invalidate
        /// notifications, §4.2) keeps encoder and decoder in sync; this field
        /// lets the simulator decode in-flight packets that raced with a
        /// replacement exactly as the protocol's epoch handling would.
        pattern: u32,
    },
}

impl WordCode {
    /// Size of this code on the wire, in bits (tag + payload).
    pub fn bits(&self) -> u32 {
        match *self {
            WordCode::Raw { prefix_bits, .. } => prefix_bits as u32 + 32,
            WordCode::Pattern {
                adjunct_bits: data, ..
            } => 3 + data as u32,
            WordCode::ZeroRun { .. } => 3 + 3,
            WordCode::Delta { delta_bits, .. } => delta_bits as u32,
            WordCode::Match { dist_bits, .. } => 2 + dist_bits as u32 + 3,
            WordCode::Dict { index_bits, .. } => 1 + index_bits as u32,
        }
    }

    /// Number of source words this code covers (1, except for zero runs and
    /// LZ matches).
    pub fn word_span(&self) -> u32 {
        match *self {
            WordCode::ZeroRun { len } => len as u32,
            WordCode::Match { len, .. } => len as u32,
            _ => 1,
        }
    }

    /// Whether the word was encoded (pattern or dictionary hit) rather than
    /// sent raw.
    pub fn is_encoded(&self) -> bool {
        !matches!(self, WordCode::Raw { .. })
    }

    /// Whether the encoding involved value approximation.
    pub fn is_approx(&self) -> bool {
        match *self {
            WordCode::Raw { .. } | WordCode::ZeroRun { .. } => false,
            WordCode::Pattern { approx, .. }
            | WordCode::Dict { approx, .. }
            | WordCode::Delta { approx, .. }
            | WordCode::Match { approx, .. } => approx,
        }
    }
}

/// The encoded network representation of one cache block.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedBlock {
    codes: Vec<WordCode>,
    dtype: DataType,
    approximable: bool,
}

impl EncodedBlock {
    /// Creates an encoded block from per-word codes.
    pub fn new(codes: Vec<WordCode>, dtype: DataType, approximable: bool) -> Self {
        EncodedBlock {
            codes,
            dtype,
            approximable,
        }
    }

    /// The per-word codes.
    pub fn codes(&self) -> &[WordCode] {
        &self.codes
    }

    /// Data type of the encoded block.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Whether the original block was annotated approximable.
    pub fn is_approximable(&self) -> bool {
        self.approximable
    }

    /// Number of codes in the block (zero runs count once).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Number of source words covered by the block.
    pub fn word_count(&self) -> u32 {
        self.codes.iter().map(WordCode::word_span).sum()
    }

    /// Whether the block holds no words.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Total payload size on the wire in bits.
    pub fn payload_bits(&self) -> u32 {
        self.codes.iter().map(WordCode::bits).sum()
    }

    /// Aggregates the per-word encoding statistics of this block.
    pub fn stats(&self) -> EncodeStats {
        let mut s = EncodeStats::default();
        s.absorb_block(self);
        s
    }
}

/// Running statistics over encoded words (drives Figures 10a/10b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Total words seen.
    pub words: u64,
    /// Words encoded via an exact match.
    pub exact_encoded: u64,
    /// Words encoded thanks to value approximation.
    pub approx_encoded: u64,
    /// Words sent raw (uncompressed).
    pub raw: u64,
    /// Total input bits (words × 32).
    pub bits_in: u64,
    /// Total output bits on the wire.
    pub bits_out: u64,
}

impl EncodeStats {
    /// Folds one encoded block into the statistics. A zero run counts as
    /// `len` exactly-encoded words.
    pub fn absorb_block(&mut self, block: &EncodedBlock) {
        for code in block.codes() {
            let span = code.word_span() as u64;
            self.words += span;
            self.bits_in += 32 * span;
            self.bits_out += code.bits() as u64;
            match (code.is_encoded(), code.is_approx()) {
                (true, true) => self.approx_encoded += span,
                (true, false) => self.exact_encoded += span,
                (false, _) => self.raw += span,
            }
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &EncodeStats) {
        self.words += other.words;
        self.exact_encoded += other.exact_encoded;
        self.approx_encoded += other.approx_encoded;
        self.raw += other.raw;
        self.bits_in += other.bits_in;
        self.bits_out += other.bits_out;
    }

    /// Fraction of words that were encoded (exact + approximate).
    pub fn encoded_fraction(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            (self.exact_encoded + self.approx_encoded) as f64 / self.words as f64
        }
    }

    /// Fraction of words encoded exactly.
    pub fn exact_fraction(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.exact_encoded as f64 / self.words as f64
        }
    }

    /// Fraction of words encoded thanks to approximation.
    pub fn approx_fraction(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.approx_encoded as f64 / self.words as f64
        }
    }

    /// Compression ratio `bits_in / bits_out` (≥ 1 is a win).
    pub fn compression_ratio(&self) -> f64 {
        if self.bits_out == 0 {
            1.0
        } else {
            self.bits_in as f64 / self.bits_out as f64
        }
    }

    /// Serializes the accumulator for a simulator snapshot.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        for v in [
            self.words,
            self.exact_encoded,
            self.approx_encoded,
            self.raw,
            self.bits_in,
            self.bits_out,
        ] {
            w.u64(v);
        }
    }

    /// Reads an accumulator written by [`save_state`](Self::save_state).
    pub fn load_state(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<EncodeStats, crate::snap::SnapError> {
        Ok(EncodeStats {
            words: r.u64()?,
            exact_encoded: r.u64()?,
            approx_encoded: r.u64()?,
            raw: r.u64()?,
            bits_in: r.u64()?,
            bits_out: r.u64()?,
        })
    }
}

/// Hardware activity counters a codec accumulates, consumed by the dynamic
/// power model (Figure 15). All counts are event totals since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecActivity {
    /// CAM search operations (pattern-matching-table lookups).
    pub cam_searches: u64,
    /// TCAM search operations (ternary approximate lookups).
    pub tcam_searches: u64,
    /// CAM/TCAM write (update/install/invalidate) operations.
    pub table_updates: u64,
    /// Approximate-value/pattern compute logic activations (AVCL/APCL).
    pub avcl_ops: u64,
    /// Words pushed through encode.
    pub words_encoded: u64,
    /// Words pushed through decode.
    pub words_decoded: u64,
    /// Dictionary notifications produced or consumed.
    pub notifications: u64,
}

impl CodecActivity {
    /// Serializes the counters for a simulator snapshot.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        for v in [
            self.cam_searches,
            self.tcam_searches,
            self.table_updates,
            self.avcl_ops,
            self.words_encoded,
            self.words_decoded,
            self.notifications,
        ] {
            w.u64(v);
        }
    }

    /// Reads counters written by [`save_state`](Self::save_state).
    pub fn load_state(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<CodecActivity, crate::snap::SnapError> {
        Ok(CodecActivity {
            cam_searches: r.u64()?,
            tcam_searches: r.u64()?,
            table_updates: r.u64()?,
            avcl_ops: r.u64()?,
            words_encoded: r.u64()?,
            words_decoded: r.u64()?,
            notifications: r.u64()?,
        })
    }

    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &CodecActivity) {
        self.cam_searches += other.cam_searches;
        self.tcam_searches += other.tcam_searches;
        self.table_updates += other.table_updates;
        self.avcl_ops += other.avcl_ops;
        self.words_encoded += other.words_encoded;
        self.words_decoded += other.words_decoded;
        self.notifications += other.notifications;
    }
}

/// A dictionary maintenance message from a decoder to a remote encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Notification {
    /// The decoder placed `pattern` at `index` in its PMT; the encoder may now
    /// compress occurrences of it for this decoder.
    Install {
        /// The newly tracked data pattern.
        pattern: u32,
        /// The encoded index assigned by the decoder.
        index: u8,
        /// Data type the pattern was observed under, so a DI-VAXX encoder's
        /// APCL can derive the right don't-care mask.
        dtype: DataType,
    },
    /// The decoder evicted `pattern`; the encoder must stop compressing it.
    Invalidate {
        /// The evicted data pattern.
        pattern: u32,
    },
}

/// Result of decoding a block: the (possibly approximated) cache block plus
/// any dictionary notifications, each addressed to the encoder at a specific
/// node (installs go to the packet's source; invalidations fan out to every
/// encoder whose valid bit is set, per Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// The reconstructed cache block.
    pub block: CacheBlock,
    /// Dictionary update notifications, paired with the node to notify.
    pub notifications: Vec<(NodeId, Notification)>,
}

/// A block compression encoder living in a source NI.
///
/// Implementations: the baseline (no-op), FP-COMP, FP-VAXX, DI-COMP and
/// DI-VAXX in the `anoc-compression` crate.
pub trait BlockEncoder {
    /// Short mechanism name, e.g. `"FP-VAXX"`.
    fn name(&self) -> &'static str;

    /// Encodes `block` for transmission to `dest`.
    fn encode(&mut self, block: &CacheBlock, dest: NodeId) -> EncodedBlock;

    /// Compression latency in cycles added on the injection path. The paper
    /// provisions three cycles (two matching + one encoding) for all
    /// mechanisms (§4.3).
    fn compression_latency(&self) -> u64 {
        3
    }

    /// Delivers a dictionary notification that arrived from `from`'s decoder.
    /// Static mechanisms ignore these.
    fn apply_notification(&mut self, from: NodeId, note: Notification) {
        let _ = (from, note);
    }

    /// Hardware activity counters accumulated so far (for the power model).
    fn activity(&self) -> CodecActivity {
        CodecActivity::default()
    }

    /// Fault-injection hook: corrupts one stored dictionary/table entry
    /// using `entropy` to pick it. Returns whether anything was corrupted —
    /// the default (for table-less mechanisms) corrupts nothing.
    fn inject_table_fault(&mut self, entropy: u64) -> bool {
        let _ = entropy;
        false
    }

    /// Retargets the encoder's approximation threshold mid-run (the staged
    /// warmup methodology warms every codec at the exact threshold and
    /// retargets at the measurement boundary, DESIGN.md §11). Mechanisms
    /// without a VAXX engine ignore this.
    fn set_error_threshold(&mut self, threshold: crate::threshold::ErrorThreshold) {
        let _ = threshold;
    }

    /// Serializes the encoder's mutable state (learned tables, RNG cursors,
    /// activity counters) for a simulator snapshot. Stateless encoders write
    /// nothing; whatever is written here must be read back by `load_state`.
    fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        let _ = w;
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// identically constructed encoder.
    fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// A block decompression decoder living in a destination NI.
pub trait BlockDecoder {
    /// Short mechanism name, e.g. `"FP-VAXX"`.
    fn name(&self) -> &'static str;

    /// Decodes a network representation received from `src`.
    fn decode(&mut self, encoded: &EncodedBlock, src: NodeId) -> DecodeResult;

    /// Decompression latency in cycles added at the ejection path (two cycles
    /// in the paper, §4.3).
    fn decompression_latency(&self) -> u64 {
        2
    }

    /// Hardware activity counters accumulated so far (for the power model).
    fn activity(&self) -> CodecActivity {
        CodecActivity::default()
    }

    /// Serializes the decoder's mutable state for a simulator snapshot (see
    /// [`BlockEncoder::save_state`]).
    fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        let _ = w;
    }

    /// Restores state written by [`save_state`](Self::save_state) into an
    /// identically constructed decoder.
    fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// The baseline mechanism: no compression at all. Every word is sent raw with
/// zero tag overhead, and codec latencies are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullCodec;

impl NullCodec {
    /// Creates a baseline codec.
    pub fn new() -> Self {
        NullCodec
    }
}

impl BlockEncoder for NullCodec {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn encode(&mut self, block: &CacheBlock, _dest: NodeId) -> EncodedBlock {
        let codes = block
            .words()
            .iter()
            .map(|w| WordCode::Raw {
                word: *w,
                prefix_bits: 0,
            })
            .collect();
        EncodedBlock::new(codes, block.dtype(), block.is_approximable())
    }

    fn compression_latency(&self) -> u64 {
        0
    }
}

impl BlockDecoder for NullCodec {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn decode(&mut self, encoded: &EncodedBlock, _src: NodeId) -> DecodeResult {
        let words = encoded
            .codes()
            .iter()
            .map(|c| match *c {
                WordCode::Raw { word, .. } => word,
                _ => unreachable!("baseline never produces encoded words"),
            })
            .collect();
        DecodeResult {
            block: CacheBlock::new(words, encoded.dtype(), encoded.is_approximable()),
            notifications: Vec::new(),
        }
    }

    fn decompression_latency(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_code_bit_sizes() {
        assert_eq!(
            WordCode::Raw {
                word: 0,
                prefix_bits: 3
            }
            .bits(),
            35
        );
        assert_eq!(
            WordCode::Pattern {
                index: 1,
                adjunct: 0xF,
                adjunct_bits: 4,
                approx: false
            }
            .bits(),
            7
        );
        assert_eq!(
            WordCode::Dict {
                index: 2,
                index_bits: 3,
                approx: true,
                pattern: 0
            }
            .bits(),
            4
        );
        assert_eq!(WordCode::ZeroRun { len: 8 }.bits(), 6);
        assert_eq!(WordCode::ZeroRun { len: 8 }.word_span(), 8);
        let m = WordCode::Match {
            distance: 3,
            len: 4,
            dist_bits: 3,
            approx: true,
        };
        assert_eq!(m.bits(), 2 + 3 + 3);
        assert_eq!(m.word_span(), 4);
        assert!(m.is_encoded());
        assert!(m.is_approx());
    }

    #[test]
    fn encode_stats_classification() {
        let codes = vec![
            WordCode::Raw {
                word: 5,
                prefix_bits: 1,
            },
            WordCode::Dict {
                index: 0,
                index_bits: 3,
                approx: false,
                pattern: 7,
            },
            WordCode::Dict {
                index: 1,
                index_bits: 3,
                approx: true,
                pattern: 9,
            },
        ];
        let block = EncodedBlock::new(codes, DataType::Int, true);
        let s = block.stats();
        assert_eq!(s.words, 3);
        assert_eq!(s.raw, 1);
        assert_eq!(s.exact_encoded, 1);
        assert_eq!(s.approx_encoded, 1);
        assert_eq!(s.bits_in, 96);
        assert_eq!(s.bits_out, 33 + 4 + 4);
        assert!((s.encoded_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.compression_ratio() > 2.0);
    }

    #[test]
    fn stats_merge() {
        let mut a = EncodeStats {
            words: 1,
            exact_encoded: 1,
            bits_in: 32,
            bits_out: 4,
            ..Default::default()
        };
        let b = EncodeStats {
            words: 2,
            raw: 2,
            bits_in: 64,
            bits_out: 66,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.words, 3);
        assert_eq!(a.bits_out, 70);
        assert!((a.exact_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.approx_fraction(), 0.0);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = EncodeStats::default();
        assert_eq!(s.encoded_fraction(), 0.0);
        assert_eq!(s.compression_ratio(), 1.0);
    }

    #[test]
    fn null_codec_roundtrip() {
        let mut enc = NullCodec::new();
        let mut dec = NullCodec::new();
        let block = CacheBlock::from_i32(&[1, -2, 3, -4]);
        let e = enc.encode(&block, NodeId(1));
        assert_eq!(e.payload_bits(), 128);
        assert_eq!(enc.compression_latency(), 0);
        assert_eq!(dec.decompression_latency(), 0);
        let d = dec.decode(&e, NodeId(0));
        assert_eq!(d.block, block);
        assert!(d.notifications.is_empty());
        assert_eq!(BlockEncoder::name(&enc), "Baseline");
        assert_eq!(BlockDecoder::name(&dec), "Baseline");
    }
}
