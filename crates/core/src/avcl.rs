//! The Approximate Value Compute Logic (AVCL) — the core of VAXX (§3.2,
//! Figure 4 of the paper).
//!
//! For a data word and an error threshold the AVCL computes how many low bits
//! of the word are *don't-cares* for approximate matching: any reference
//! pattern agreeing on the remaining high bits is an acceptable approximation.
//! Integers are handled natively; IEEE-754 single-precision floats have their
//! 23-bit mantissa extracted, concatenated with the implicit leading 1 to form
//! a 24-bit significand, and pushed through the same integer logic. Floats
//! whose exponent is all-zeros or all-ones (zero, denormals, infinities, NaN)
//! bypass approximation, as does anything when the block is not annotated
//! approximable.

use crate::data::DataType;
use crate::threshold::ErrorThreshold;

/// Number of explicit mantissa bits in an IEEE-754 single-precision float.
pub const F32_MANTISSA_BITS: u32 = 23;

/// How don't-care mask widths are derived from the error range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaskPolicy {
    /// `k = floor(log2(range + 1))`, so `2^k - 1 <= range`: the produced
    /// approximation **never** violates the threshold. This is the default.
    #[default]
    Guaranteed,
    /// Rounds the range and the mask width up, reproducing the paper's §3.2
    /// worked example (value 9 at 20% → pattern `10xx`, which admits a
    /// worst-case error of 3/9 ≈ 33%). Useful for like-for-like comparison
    /// with the paper; trades a slightly looser bound for more matches.
    Relaxed,
}

/// A value with a don't-care low-bit mask — the ternary pattern stored in the
/// DI-VAXX TCAM and used for masked comparison in FP-VAXX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApproxPattern {
    value: u32,
    /// 1-bits mark don't-care positions (always a contiguous low-bit run).
    mask: u32,
}

impl ApproxPattern {
    /// Creates a pattern from a value and a don't-care mask.
    pub fn new(value: u32, mask: u32) -> Self {
        ApproxPattern { value, mask }
    }

    /// An exact pattern (no don't-care bits).
    pub fn exact(value: u32) -> Self {
        ApproxPattern { value, mask: 0 }
    }

    /// The underlying value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The don't-care bit mask.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// The canonical (high-bit) part compared during matching.
    #[inline]
    pub fn base(&self) -> u32 {
        self.value & !self.mask
    }

    /// Number of don't-care bits.
    #[inline]
    pub fn dont_care_bits(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether `candidate` matches this pattern (TCAM semantics: all
    /// non-masked bits equal).
    ///
    /// ```
    /// use anoc_core::avcl::ApproxPattern;
    /// let p = ApproxPattern::new(0b1001, 0b0011); // "10xx"
    /// assert!(p.matches(0b1000) && p.matches(0b1011));
    /// assert!(!p.matches(0b1100));
    /// ```
    #[inline]
    pub fn matches(&self, candidate: u32) -> bool {
        (candidate & !self.mask) == self.base()
    }

    /// Whether this pattern is exact (no tolerance).
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.mask == 0
    }
}

/// The Approximate Value Compute Logic.
///
/// Combinational in the paper's design; its timing shows up in the codec
/// latency models, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Avcl {
    threshold: ErrorThreshold,
    policy: MaskPolicy,
}

impl Avcl {
    /// Creates an AVCL for `threshold` with the default (guaranteed) policy.
    pub fn new(threshold: ErrorThreshold) -> Self {
        Avcl {
            threshold,
            policy: MaskPolicy::Guaranteed,
        }
    }

    /// Creates an AVCL with an explicit [`MaskPolicy`].
    pub fn with_policy(threshold: ErrorThreshold, policy: MaskPolicy) -> Self {
        Avcl { threshold, policy }
    }

    /// The configured threshold.
    #[inline]
    pub fn threshold(&self) -> ErrorThreshold {
        self.threshold
    }

    /// The configured mask policy.
    #[inline]
    pub fn policy(&self) -> MaskPolicy {
        self.policy
    }

    /// Number of don't-care bits tolerated by a value of the given unsigned
    /// `magnitude`.
    pub fn dont_care_width(&self, magnitude: u32) -> u32 {
        let range = match self.policy {
            MaskPolicy::Guaranteed => self.threshold.error_range(magnitude) as u64,
            MaskPolicy::Relaxed => {
                // ceil(v * e / 100)
                (magnitude as u64 * self.threshold.percent() as u64).div_ceil(100)
            }
        };
        match self.policy {
            // largest k with 2^k - 1 <= range
            MaskPolicy::Guaranteed => (range + 1).ilog2(),
            // smallest k with 2^k - 1 >= range (paper's worked example)
            MaskPolicy::Relaxed => {
                if range == 0 {
                    0
                } else {
                    64 - range.leading_zeros()
                }
            }
        }
    }

    /// Computes the ternary approximate pattern for `word` (Figure 4
    /// datapath). For floats the mask is confined to the mantissa and special
    /// exponents bypass approximation entirely.
    pub fn approx_pattern(&self, word: u32, dtype: DataType) -> ApproxPattern {
        if self.threshold.is_exact() {
            return ApproxPattern::exact(word);
        }
        match dtype {
            DataType::Int => {
                let magnitude = (word as i32).unsigned_abs();
                let k = self.dont_care_width(magnitude);
                ApproxPattern::new(word, low_mask(k))
            }
            DataType::F32 => {
                if float_bypass(word) {
                    return ApproxPattern::exact(word);
                }
                let sig = significand(word);
                let k = self.dont_care_width(sig).min(F32_MANTISSA_BITS);
                ApproxPattern::new(word, low_mask(k))
            }
        }
    }

    /// Batch variant of [`Avcl::approx_pattern`]: computes the ternary
    /// patterns of eight contiguous words in one call. The AVCL datapath is
    /// replicated per lane in hardware, so the eight masks come out of one
    /// table iteration; callers that walk a cache block eight words at a time
    /// (the wide-compare encode loops) hoist the per-word dispatch out of
    /// their inner loop this way.
    pub fn approx_pattern8(&self, words: &[u32; 8], dtype: DataType) -> [ApproxPattern; 8] {
        let mut out = [ApproxPattern::exact(0); 8];
        if self.threshold.is_exact() {
            for (lane, &word) in out.iter_mut().zip(words) {
                *lane = ApproxPattern::exact(word);
            }
            return out;
        }
        match dtype {
            DataType::Int => {
                for (lane, &word) in out.iter_mut().zip(words) {
                    let k = self.dont_care_width((word as i32).unsigned_abs());
                    *lane = ApproxPattern::new(word, low_mask(k));
                }
            }
            DataType::F32 => {
                for (lane, &word) in out.iter_mut().zip(words) {
                    *lane = if float_bypass(word) {
                        ApproxPattern::exact(word)
                    } else {
                        let k = self
                            .dont_care_width(significand(word))
                            .min(F32_MANTISSA_BITS);
                        ApproxPattern::new(word, low_mask(k))
                    };
                }
            }
        }
        out
    }

    /// Whether `reference` is an acceptable approximation of `word` under this
    /// AVCL (i.e. `reference` falls inside `word`'s don't-care pattern).
    pub fn accepts(&self, word: u32, reference: u32, dtype: DataType) -> bool {
        self.approx_pattern(word, dtype).matches(reference)
    }

    /// Software oracle: the real-valued relative error between `precise` and
    /// `approx`, interpreted per `dtype`. Returns `None` when either float is
    /// non-finite.
    pub fn relative_error(precise: u32, approx: u32, dtype: DataType) -> Option<f64> {
        match dtype {
            DataType::Int => {
                let p = precise as i32 as f64;
                let a = approx as i32 as f64;
                // anoc-lint: allow(D003): exact-zero guard, relative error undefined at 0
                if p == 0.0 {
                    // anoc-lint: allow(D003): exact-zero comparison picks the 0/inf sentinel
                    Some(if a == 0.0 { 0.0 } else { f64::INFINITY })
                } else {
                    Some((a - p).abs() / p.abs())
                }
            }
            DataType::F32 => {
                let p = f32::from_bits(precise) as f64;
                let a = f32::from_bits(approx) as f64;
                if !p.is_finite() || !a.is_finite() {
                    return None;
                }
                // anoc-lint: allow(D003): exact-zero guard, relative error undefined at 0
                if p == 0.0 {
                    // anoc-lint: allow(D003): exact-zero comparison picks the 0/inf sentinel
                    Some(if a == 0.0 { 0.0 } else { f64::INFINITY })
                } else {
                    Some((a - p).abs() / p.abs())
                }
            }
        }
    }
}

impl Default for Avcl {
    fn default() -> Self {
        Avcl::new(ErrorThreshold::default())
    }
}

/// A mask with the low `k` bits set.
#[inline]
pub fn low_mask(k: u32) -> u32 {
    if k >= 32 {
        u32::MAX
    } else {
        (1u32 << k) - 1
    }
}

/// The 8-bit exponent field of a float word.
#[inline]
pub fn exponent(word: u32) -> u32 {
    (word >> F32_MANTISSA_BITS) & 0xFF
}

/// Whether a float word must bypass approximation: exponent all zeros (zero /
/// denormal) or all ones (infinity / NaN), per the float exponent detection
/// logic of Figure 4.
#[inline]
pub fn float_bypass(word: u32) -> bool {
    let e = exponent(word);
    e == 0 || e == 0xFF
}

/// The 24-bit significand of a normal float word: the 23-bit mantissa with the
/// implicit leading 1 concatenated on top (Figure 4's "mantissa extraction").
#[inline]
pub fn significand(word: u32) -> u32 {
    (1 << F32_MANTISSA_BITS) | (word & low_mask(F32_MANTISSA_BITS))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(p: u32) -> ErrorThreshold {
        ErrorThreshold::from_percent(p).unwrap()
    }

    #[test]
    fn paper_example_relaxed_policy() {
        // §3.2: value 9 (1001) at 20% -> pattern "10xx" (2 don't-care bits).
        let avcl = Avcl::with_policy(pct(20), MaskPolicy::Relaxed);
        let p = avcl.approx_pattern(9, DataType::Int);
        assert_eq!(p.dont_care_bits(), 2);
        for v in [8, 9, 10, 11] {
            assert!(p.matches(v), "paper says {v} matches 10xx");
        }
        assert!(!p.matches(12));
    }

    #[test]
    fn guaranteed_policy_is_tighter() {
        let avcl = Avcl::new(pct(20));
        let p = avcl.approx_pattern(9, DataType::Int);
        // range = 9 >> 3 = 1, so only 1 don't-care bit: "100x".
        assert_eq!(p.dont_care_bits(), 1);
        assert!(p.matches(8) && p.matches(9));
        assert!(!p.matches(10));
    }

    #[test]
    fn guaranteed_never_violates_threshold_for_ints() {
        for pcts in [5u32, 10, 20, 50] {
            let avcl = Avcl::new(pct(pcts));
            for w in [0u32, 1, 9, 100, 1000, 65535, 1 << 30, u32::MAX / 3] {
                let p = avcl.approx_pattern(w, DataType::Int);
                // Worst-case matched value differs in all masked bits.
                let worst_hi = w | p.mask();
                let worst_lo = w & !p.mask();
                for cand in [worst_hi, worst_lo] {
                    let err = Avcl::relative_error(w, cand, DataType::Int).unwrap();
                    assert!(
                        err <= pcts as f64 / 100.0 + 1e-12,
                        "w={w} pct={pcts} cand={cand} err={err}"
                    );
                }
            }
        }
    }

    #[test]
    fn float_mantissa_only() {
        let avcl = Avcl::new(pct(10));
        let w = 123.456f32.to_bits();
        let p = avcl.approx_pattern(w, DataType::F32);
        // Mask confined to mantissa bits.
        assert_eq!(p.mask() & !low_mask(F32_MANTISSA_BITS), 0);
        assert!(p.dont_care_bits() > 0);
        // A sign flip or exponent change never matches.
        assert!(!p.matches(w ^ (1 << 31)));
        assert!(!p.matches((-123.456f32).to_bits()));
        assert!(!p.matches(246.912f32.to_bits()));
    }

    #[test]
    fn float_specials_bypass() {
        let avcl = Avcl::new(pct(20));
        for v in [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            1e-40,
        ] {
            let w = v.to_bits();
            assert!(float_bypass(w), "{v} should bypass");
            let p = avcl.approx_pattern(w, DataType::F32);
            assert!(p.is_exact());
        }
        assert!(!float_bypass(1.0f32.to_bits()));
    }

    #[test]
    fn float_error_within_threshold() {
        let avcl = Avcl::new(pct(10));
        for v in [1.0f32, 2.6181, 1234.5, 1e-3, 9.9e8] {
            let w = v.to_bits();
            let p = avcl.approx_pattern(w, DataType::F32);
            let worst = w | p.mask();
            let err = Avcl::relative_error(w, worst, DataType::F32).unwrap();
            assert!(err <= 0.10 + 1e-9, "v={v} err={err}");
        }
    }

    #[test]
    fn exact_threshold_forces_exact_patterns() {
        let avcl = Avcl::new(ErrorThreshold::exact());
        let p = avcl.approx_pattern(9999, DataType::Int);
        assert!(p.is_exact());
        assert!(p.matches(9999));
        assert!(!p.matches(9998));
    }

    #[test]
    fn negative_int_magnitude() {
        let avcl = Avcl::new(pct(25));
        let w = (-1000i32) as u32;
        let p = avcl.approx_pattern(w, DataType::Int);
        // range = 1000 >> 2 = 250 -> k = floor(log2 251) = 7.
        assert_eq!(p.dont_care_bits(), 7);
        // Changing low bits of a negative two's-complement value moves it by
        // at most 127, well inside 25% of 1000.
        let cand = w | p.mask();
        let err = Avcl::relative_error(w, cand, DataType::Int).unwrap();
        assert!(err <= 0.25);
    }

    #[test]
    fn small_values_require_exact_match() {
        let avcl = Avcl::new(pct(10));
        // 10% of 5 is 0.5 -> hardware range 0 -> no don't-cares.
        let p = avcl.approx_pattern(5, DataType::Int);
        assert!(p.is_exact());
    }

    #[test]
    fn approx_pattern8_agrees_with_scalar() {
        let mut rng = crate::rng::Pcg32::seed_from_u64(0x8A7C);
        for &p in &[0u32, 5, 10, 25] {
            let avcl = if p == 0 {
                Avcl::new(ErrorThreshold::exact())
            } else {
                Avcl::new(pct(p))
            };
            for _ in 0..50 {
                let words: [u32; 8] = core::array::from_fn(|_| rng.next_u32() >> rng.below(28));
                for dtype in [DataType::Int, DataType::F32] {
                    let batch = avcl.approx_pattern8(&words, dtype);
                    for (lane, &w) in batch.iter().zip(&words) {
                        assert_eq!(*lane, avcl.approx_pattern(w, dtype), "{w:#x} at {p}%");
                    }
                }
            }
        }
    }

    #[test]
    fn accepts_helper() {
        let avcl = Avcl::new(pct(25));
        assert!(avcl.accepts(100, 99, DataType::Int)); // range 25, k=4
        assert!(avcl.accepts(100, 111, DataType::Int));
        assert!(!avcl.accepts(100, 128, DataType::Int));
    }

    #[test]
    fn significand_and_helpers() {
        let w = 1.5f32.to_bits(); // mantissa = 0x400000
        assert_eq!(significand(w), (1 << 23) | 0x40_0000);
        assert_eq!(exponent(w), 127);
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(32), u32::MAX);
        assert_eq!(low_mask(33), u32::MAX);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(Avcl::relative_error(0, 0, DataType::Int), Some(0.0));
        assert_eq!(
            Avcl::relative_error(0, 1, DataType::Int),
            Some(f64::INFINITY)
        );
        assert!(Avcl::relative_error(f32::NAN.to_bits(), 0, DataType::F32).is_none());
        let z = 0.0f32.to_bits();
        assert_eq!(Avcl::relative_error(z, z, DataType::F32), Some(0.0));
    }
}
