//! The campaign planner: expand a figure into jobs, execute in parallel,
//! merge deterministically.
//!
//! A campaign is an ordered plan of [`JobSpec`]s. Execution may complete in
//! any order across worker threads, but results are always merged back **in
//! plan order**, so a parallel campaign is bit-identical to running the same
//! plan serially. Each job carries a canonical content `key`; when a
//! [`ResultCache`] and [`ResultCodec`] are supplied, cached cells skip
//! simulation entirely and fresh results are written back for next time.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::pool::ThreadPool;
use crate::progress::Progress;

/// A shared warm-start stage a job depends on.
///
/// Several sweep cells often share the exact same warmup (same config outside
/// the measurement window, same workload and seed); each carries the same
/// `key` and a closure that *produces* the warm state — typically by
/// simulating the warmup once and publishing a snapshot to a
/// [`SnapshotStore`](crate::SnapshotStore). The planner runs one closure per
/// distinct key before the measurement jobs start; the jobs themselves then
/// look the snapshot up and fall back to a cold run on a miss, so a failed
/// or skipped warmup never fails a campaign.
pub struct WarmupSpec {
    /// Canonical content key identifying the shared warm state.
    pub key: String,
    /// Produces and publishes the warm state as a side effect.
    pub work: WarmupWork,
}

/// The boxed side-effecting closure of a [`WarmupSpec`].
pub type WarmupWork = Box<dyn FnOnce() + Send>;

/// One schedulable unit of work: a single simulation cell.
pub struct JobSpec<T> {
    /// Human-readable stable identifier, e.g. `fig9/ssca2/FP-VAXX/s42`.
    pub id: String,
    /// Canonical single-line content key; equal keys ⇒ equal results.
    pub key: String,
    /// Optional shared warm-start stage; deduplicated by key across the plan
    /// and run before the cache-missed jobs execute.
    pub warmup: Option<WarmupSpec>,
    work: Box<dyn FnOnce() -> T + Send + 'static>,
}

impl<T> JobSpec<T> {
    /// Builds a job from its identifiers and the closure computing it.
    pub fn new(
        id: impl Into<String>,
        key: impl Into<String>,
        work: impl FnOnce() -> T + Send + 'static,
    ) -> Self {
        JobSpec {
            id: id.into(),
            key: key.into(),
            warmup: None,
            work: Box::new(work),
        }
    }

    /// Attaches a shared warm-start stage to this job.
    pub fn with_warmup(
        mut self,
        key: impl Into<String>,
        work: impl FnOnce() + Send + 'static,
    ) -> Self {
        self.warmup = Some(WarmupSpec {
            key: key.into(),
            work: Box::new(work),
        });
        self
    }

    /// Post-processes the job's result with `f`, keeping id, key and warmup
    /// — e.g. wrapping an infallible job for [`run_campaign_checked`] with
    /// `job.map(Ok)`.
    pub fn map<U>(self, f: impl FnOnce(T) -> U + Send + 'static) -> JobSpec<U>
    where
        T: 'static,
    {
        let work = self.work;
        JobSpec {
            id: self.id,
            key: self.key,
            warmup: self.warmup,
            work: Box::new(move || f(work())),
        }
    }
}

/// Serializes results to and from the cache's text payloads.
pub trait ResultCodec<T> {
    /// Encodes a result as a text payload.
    fn encode(&self, value: &T) -> String;
    /// Decodes a payload; `None` (stale/foreign format) forces a re-run.
    fn decode(&self, payload: &str) -> Option<T>;
}

/// Execution knobs for one campaign.
pub struct CampaignOptions {
    /// Label shown in progress lines.
    pub label: String,
    /// Force progress reporting off (overrides the `ANOC_PROGRESS` policy).
    pub quiet: bool,
}

impl CampaignOptions {
    /// Options with a progress label, using the default progress policy.
    pub fn labeled(label: impl Into<String>) -> Self {
        CampaignOptions {
            label: label.into(),
            quiet: false,
        }
    }

    /// Options with progress reporting disabled.
    pub fn quiet() -> Self {
        CampaignOptions {
            label: "campaign".into(),
            quiet: true,
        }
    }
}

/// What a campaign did, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignReport {
    /// Total jobs in the plan.
    pub jobs: usize,
    /// Jobs answered from the cache.
    pub cache_hits: usize,
    /// Jobs actually executed.
    pub executed: usize,
    /// Wall-clock duration of the whole campaign.
    pub wall: Duration,
    /// Simulated cycles summed over the executed jobs (cache hits excluded;
    /// 0 when no cycle extractor was supplied).
    pub sim_cycles: u64,
    /// Per-job wall time summed over the executed jobs — the serial cost,
    /// where `wall` is the parallel one.
    pub exec_wall: Duration,
}

impl CampaignReport {
    /// Aggregate simulator throughput: simulated cycles per wall-clock
    /// second of the campaign. Zero when nothing was executed.
    pub fn cycles_per_second(&self) -> f64 {
        if self.sim_cycles == 0 || self.wall.is_zero() {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Why one campaign cell produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The cell's closure panicked; the payload message is carried.
    Panicked(String),
    /// The cell completed but reported a typed failure (e.g. a simulation
    /// watchdog abort), with its diagnostic rendering.
    Failed(String),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked(msg) => write!(f, "panicked: {msg}"),
            CellError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// One failed cell of a checked campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Position in the plan.
    pub index: usize,
    /// The cell's stable identifier.
    pub id: String,
    /// What went wrong.
    pub error: CellError,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} ({}) {}", self.index, self.id, self.error)
    }
}

/// The outcome of a checked campaign: per-cell results in plan order
/// (`None` where the cell failed), the failures, and the usual report.
#[derive(Debug)]
pub struct CampaignOutcome<T> {
    /// Results in plan order; `None` exactly at the failed cells.
    pub results: Vec<Option<T>>,
    /// Every failed cell, in plan order.
    pub failures: Vec<CellFailure>,
    /// Execution statistics.
    pub report: CampaignReport,
}

impl<T> CampaignOutcome<T> {
    /// Whether every cell succeeded.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Attempts a cache write with bounded retries (transient filesystem
/// failures — e.g. a concurrent cleaner — should not cost a re-simulation
/// next run). The final error is reported to stderr, never propagated.
fn cache_put_with_retry(store: &ResultCache, key: &str, payload: &str, label: &str, id: &str) {
    const ATTEMPTS: usize = 3;
    let mut last_err = None;
    for _ in 0..ATTEMPTS {
        match store.put(key, payload) {
            Ok(()) => return,
            Err(err) => last_err = Some(err),
        }
    }
    if let Some(err) = last_err {
        eprintln!("[{label}] cache write failed for {id} after {ATTEMPTS} attempts: {err}");
    }
}

/// Runs a campaign on `pool`, optionally backed by `cache`, and returns the
/// results **in plan order** plus a report.
///
/// `cycles_of` extracts the simulated-cycle count from a result; when
/// supplied, per-job progress lines and the report carry cycles-per-second
/// throughput.
///
/// Cache misses and decode failures re-run the job; fresh results are
/// written back. Cache write errors are reported to stderr but never fail
/// the campaign.
///
/// # Panics
///
/// If any cell panics, panics after all cells have finished with a `String`
/// payload listing every failed cell. Campaigns that must survive failing
/// cells use [`run_campaign_checked`] instead.
pub fn run_campaign<T: Send + 'static>(
    pool: &ThreadPool,
    cache: Option<(&ResultCache, &dyn ResultCodec<T>)>,
    jobs: Vec<JobSpec<T>>,
    options: &CampaignOptions,
    cycles_of: Option<fn(&T) -> u64>,
) -> (Vec<T>, CampaignReport) {
    let jobs: Vec<JobSpec<Result<T, String>>> = jobs.into_iter().map(|job| job.map(Ok)).collect();
    let outcome = run_campaign_checked(pool, cache, jobs, options, cycles_of);
    if !outcome.failures.is_empty() {
        let mut report = format!("{} campaign cell(s) failed:", outcome.failures.len());
        for f in &outcome.failures {
            report.push_str(&format!("\n  {f}"));
        }
        std::panic::panic_any(report);
    }
    let results = outcome
        .results
        .into_iter()
        .map(|s| s.expect("no failures, so every plan slot is filled"))
        .collect();
    (results, outcome.report)
}

/// The fault-tolerant variant of [`run_campaign`]: cells return
/// `Result<T, String>` and may panic; both failure modes are isolated per
/// cell. The campaign always runs to completion, successful cells are
/// cached, and failures come back typed in the [`CampaignOutcome`] instead
/// of unwinding.
pub fn run_campaign_checked<T: Send + 'static>(
    pool: &ThreadPool,
    cache: Option<(&ResultCache, &dyn ResultCodec<T>)>,
    jobs: Vec<JobSpec<Result<T, String>>>,
    options: &CampaignOptions,
    cycles_of: Option<fn(&T) -> u64>,
) -> CampaignOutcome<T> {
    let start = Instant::now();
    let total = jobs.len();
    let progress = Arc::new(Progress::with_enabled(
        &options.label,
        total,
        !options.quiet && crate::progress::enabled(),
    ));

    // Phase 1: resolve what the cache already knows (only successes are
    // ever cached, so a hit is always an `Ok` cell).
    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    let mut misses: Vec<(usize, JobSpec<Result<T, String>>)> = Vec::new();
    let mut cache_hits = 0;
    for (idx, job) in jobs.into_iter().enumerate() {
        let cached = cache
            .as_ref()
            .and_then(|(store, codec)| store.get(&job.key).and_then(|p| codec.decode(&p)));
        match cached {
            Some(value) => {
                cache_hits += 1;
                slots.push(Some(value));
            }
            None => {
                slots.push(None);
                misses.push((idx, job));
            }
        }
    }
    progress.cache_hits(cache_hits);

    // Phase 1.5: run the shared warmups the missed jobs depend on, one per
    // distinct key (first-wins, in deterministic key order). Warmups publish
    // their state as a side effect (e.g. into a snapshot store); the jobs
    // fall back to a cold run when that state is absent, so a panicking
    // warmup degrades throughput, never correctness.
    let mut warmups: BTreeMap<String, WarmupWork> = BTreeMap::new();
    for (_, job) in &mut misses {
        if let Some(spec) = job.warmup.take() {
            warmups.entry(spec.key).or_insert(spec.work);
        }
    }
    if !warmups.is_empty() {
        let (keys, tasks): (Vec<String>, Vec<WarmupWork>) = warmups.into_iter().unzip();
        for (i, outcome) in pool.run_ordered_results(tasks).into_iter().enumerate() {
            if let Err(msg) = outcome {
                eprintln!(
                    "[{}] warmup '{}' panicked ({msg}); its cells run cold",
                    options.label, keys[i]
                );
            }
        }
    }

    // Phase 2: execute the misses in parallel, isolating panics per cell.
    let executed = misses.len();
    let ids: Vec<String> = misses.iter().map(|(_, j)| j.id.clone()).collect();
    let keys: Vec<String> = misses.iter().map(|(_, j)| j.key.clone()).collect();
    let plan_indices: Vec<usize> = misses.iter().map(|(idx, _)| *idx).collect();
    type TimedTask<T> = Box<dyn FnOnce() -> (Duration, Result<T, String>) + Send>;
    let tasks: Vec<TimedTask<T>> = misses
        .into_iter()
        .map(|(_, job)| {
            let progress = Arc::clone(&progress);
            let work = job.work;
            Box::new(move || {
                progress.job_started();
                let t = Instant::now();
                let value = work();
                (t.elapsed(), value)
            }) as TimedTask<T>
        })
        .collect();
    let fresh = pool.run_ordered_results_observed(tasks, |i, (wall, value)| {
        let cycles = match value {
            Ok(v) => cycles_of.map(|f| f(v)),
            Err(_) => None,
        };
        progress.job_finished(&ids[i], *wall, cycles);
    });

    // Phase 3: write back successes and merge in plan order.
    let mut sim_cycles = 0u64;
    let mut exec_wall = Duration::ZERO;
    let mut failures: Vec<CellFailure> = Vec::new();
    for (i, outcome) in fresh.into_iter().enumerate() {
        let index = plan_indices[i];
        match outcome {
            Ok((wall, Ok(value))) => {
                sim_cycles += cycles_of.map_or(0, |f| f(&value));
                exec_wall += wall;
                if let Some((store, codec)) = cache.as_ref() {
                    cache_put_with_retry(
                        store,
                        &keys[i],
                        &codec.encode(&value),
                        &options.label,
                        &ids[i],
                    );
                }
                slots[index] = Some(value);
            }
            Ok((wall, Err(msg))) => {
                exec_wall += wall;
                failures.push(CellFailure {
                    index,
                    id: ids[i].clone(),
                    error: CellError::Failed(msg),
                });
            }
            Err(panic_msg) => {
                failures.push(CellFailure {
                    index,
                    id: ids[i].clone(),
                    error: CellError::Panicked(panic_msg),
                });
            }
        }
    }
    progress.finish(executed);
    failures.sort_by_key(|f| f.index);

    let report = CampaignReport {
        jobs: total,
        cache_hits,
        executed,
        wall: start.elapsed(),
        sim_cycles,
        exec_wall,
    };
    CampaignOutcome {
        results: slots,
        failures,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct U64Codec;
    impl ResultCodec<u64> for U64Codec {
        fn encode(&self, value: &u64) -> String {
            value.to_string()
        }
        fn decode(&self, payload: &str) -> Option<u64> {
            payload.trim().parse().ok()
        }
    }

    fn temp_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("anoc-exec-campaign-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).expect("open temp cache")
    }

    fn square_jobs(n: u64) -> Vec<JobSpec<u64>> {
        (0..n)
            .map(|i| JobSpec::new(format!("sq/{i}"), format!("square v1 n={i}"), move || i * i))
            .collect()
    }

    #[test]
    fn merge_is_in_plan_order() {
        let pool = ThreadPool::new(6);
        let jobs: Vec<JobSpec<u64>> = (0..40u64)
            .map(|i| {
                JobSpec::new(format!("j{i}"), format!("k{i}"), move || {
                    std::thread::sleep(Duration::from_micros(40 - i));
                    i
                })
            })
            .collect();
        let (results, report) = run_campaign(&pool, None, jobs, &CampaignOptions::quiet(), None);
        assert_eq!(results, (0..40).collect::<Vec<_>>());
        assert_eq!(report.jobs, 40);
        assert_eq!(report.executed, 40);
        assert_eq!(report.cache_hits, 0);
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let pool = ThreadPool::new(4);
        let cache = temp_cache("hits");
        let codec = U64Codec;
        let (cold, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(12),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(report.executed, 12);
        let (warm, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(12),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(report.executed, 0);
        assert_eq!(report.cache_hits, 12);
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_change_invalidates_only_changed_cells() {
        let pool = ThreadPool::new(4);
        let cache = temp_cache("invalidate");
        let codec = U64Codec;
        let _ = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(8),
            &CampaignOptions::quiet(),
            None,
        );
        // Same plan, but cell 3 now has a different content key (as if its
        // config changed): exactly one cell re-runs.
        let jobs: Vec<JobSpec<u64>> = (0..8u64)
            .map(|i| {
                let key = if i == 3 {
                    "square v2 n=3".to_string()
                } else {
                    format!("square v1 n={i}")
                };
                JobSpec::new(format!("sq/{i}"), key, move || i * i)
            })
            .collect();
        let (_, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            jobs,
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(report.executed, 1);
        assert_eq!(report.cache_hits, 7);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn undecodable_payload_forces_rerun() {
        let pool = ThreadPool::new(2);
        let cache = temp_cache("stale");
        cache.put("square v1 n=0", "not a number").expect("put");
        let codec = U64Codec;
        let (results, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(1),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(results, vec![0]);
        assert_eq!(report.executed, 1);
        // The bad entry was replaced by a good one.
        assert_eq!(cache.get("square v1 n=0").as_deref(), Some("0"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cycle_extractor_feeds_the_report() {
        let pool = ThreadPool::new(2);
        let (results, report) = run_campaign(
            &pool,
            None,
            square_jobs(5),
            &CampaignOptions::quiet(),
            Some(|v: &u64| *v + 1),
        );
        assert_eq!(results.len(), 5);
        assert_eq!(report.sim_cycles, (0..5u64).map(|i| i * i + 1).sum::<u64>());
        assert!(report.cycles_per_second() > 0.0);
        // Cached jobs contribute no cycles: they did not simulate.
        let cache = temp_cache("cycles");
        let codec = U64Codec;
        let _ = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(5),
            &CampaignOptions::quiet(),
            Some(|v: &u64| *v + 1),
        );
        let (_, warm) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            square_jobs(5),
            &CampaignOptions::quiet(),
            Some(|v: &u64| *v + 1),
        );
        assert_eq!(warm.sim_cycles, 0);
        assert_eq!(warm.cycles_per_second(), 0.0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn checked_campaign_survives_panics_and_failures() {
        let pool = ThreadPool::new(4);
        let cache = temp_cache("checked");
        let codec = U64Codec;
        let jobs: Vec<JobSpec<Result<u64, String>>> = (0..6u64)
            .map(|i| {
                JobSpec::new(
                    format!("c/{i}"),
                    format!("checked v1 n={i}"),
                    move || match i {
                        2 => panic!("cell 2 blew up"),
                        4 => Err("watchdog tripped".to_string()),
                        _ => Ok(i * 100),
                    },
                )
            })
            .collect();
        let outcome = run_campaign_checked(
            &pool,
            Some((&cache, &codec)),
            jobs,
            &CampaignOptions::quiet(),
            None,
        );
        assert!(!outcome.is_complete());
        assert_eq!(outcome.failures.len(), 2);
        assert_eq!(outcome.failures[0].index, 2);
        assert_eq!(
            outcome.failures[0].error,
            CellError::Panicked("cell 2 blew up".to_string())
        );
        assert_eq!(outcome.failures[1].index, 4);
        assert_eq!(
            outcome.failures[1].error,
            CellError::Failed("watchdog tripped".to_string())
        );
        for (i, slot) in outcome.results.iter().enumerate() {
            if i == 2 || i == 4 {
                assert!(slot.is_none());
            } else {
                assert_eq!(*slot, Some(i as u64 * 100));
            }
        }
        // Only the successes were cached.
        assert_eq!(cache.get("checked v1 n=0").as_deref(), Some("0"));
        assert!(cache.get("checked v1 n=2").is_none());
        assert!(cache.get("checked v1 n=4").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn unchecked_campaign_reports_every_failed_cell() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<JobSpec<u64>> = (0..5u64)
            .map(|i| {
                JobSpec::new(format!("p/{i}"), format!("k/{i}"), move || {
                    if i % 2 == 1 {
                        panic!("odd cell {i}");
                    }
                    i
                })
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&pool, None, jobs, &CampaignOptions::quiet(), None)
        }))
        .expect_err("campaign with panicking cells must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("2 campaign cell(s) failed"), "{msg}");
        assert!(msg.contains("odd cell 1"), "{msg}");
        assert!(msg.contains("odd cell 3"), "{msg}");
    }

    #[test]
    fn warmups_run_once_per_key_and_only_for_misses() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(4);
        let cache = temp_cache("warmup");
        let codec = U64Codec;
        // 6 cells over 2 warmup groups; counts how often each warmup runs
        // and proves every warmup finished before any measurement started.
        let warm_runs = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let measured_before_warm = Arc::new(AtomicUsize::new(0));
        let make_jobs = |warm_runs: &Arc<[AtomicUsize; 2]>,
                         early: &Arc<AtomicUsize>|
         -> Vec<JobSpec<u64>> {
            (0..6u64)
                .map(|i| {
                    let group = i % 2;
                    let warm = Arc::clone(warm_runs);
                    let warm_check = Arc::clone(warm_runs);
                    let early = Arc::clone(early);
                    JobSpec::new(format!("w/{i}"), format!("warm v1 n={i}"), move || {
                        // anoc-lint: allow(X001): test-only counters
                        if warm_check[group as usize].load(Ordering::SeqCst) == 0 {
                            early.fetch_add(1, Ordering::SeqCst);
                        }
                        i * 10
                    })
                    .with_warmup(format!("warmup g={group}"), move || {
                        warm[group as usize].fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect()
        };
        let (results, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            make_jobs(&warm_runs, &measured_before_warm),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(report.executed, 6);
        // anoc-lint: allow(X001): test-only counters
        assert_eq!(warm_runs[0].load(Ordering::SeqCst), 1, "group 0 deduped");
        assert_eq!(warm_runs[1].load(Ordering::SeqCst), 1, "group 1 deduped");
        assert_eq!(
            measured_before_warm.load(Ordering::SeqCst),
            0,
            "all warmups complete before any measurement runs"
        );
        // Fully cached second run: warmups are skipped entirely.
        let (_, report) = run_campaign(
            &pool,
            Some((&cache, &codec)),
            make_jobs(&warm_runs, &measured_before_warm),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(report.cache_hits, 6);
        assert_eq!(warm_runs[0].load(Ordering::SeqCst), 1);
        assert_eq!(warm_runs[1].load(Ordering::SeqCst), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn a_panicking_warmup_does_not_fail_the_campaign() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<JobSpec<u64>> = (0..3u64)
            .map(|i| {
                JobSpec::new(format!("pw/{i}"), format!("pw v1 n={i}"), move || i)
                    .with_warmup("doomed warmup", || panic!("warmup exploded"))
            })
            .collect();
        let (results, report) = run_campaign(&pool, None, jobs, &CampaignOptions::quiet(), None);
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(report.executed, 3);
    }

    #[test]
    fn parallel_equals_serial_bit_for_bit() {
        let serial = ThreadPool::new(1);
        let parallel = ThreadPool::new(8);
        let (a, _) = run_campaign(
            &serial,
            None,
            square_jobs(32),
            &CampaignOptions::quiet(),
            None,
        );
        let (b, _) = run_campaign(
            &parallel,
            None,
            square_jobs(32),
            &CampaignOptions::quiet(),
            None,
        );
        assert_eq!(a, b);
    }
}
