//! # anoc-exec
//!
//! The parallel experiment-execution engine of the APPROX-NoC workspace.
//!
//! Every simulation cell the harness runs is a pure function of its inputs
//! (`SystemConfig`, mechanism, benchmark, seed — DESIGN.md §6), which makes
//! figure campaigns embarrassingly parallel. This crate supplies the
//! machinery, with no dependencies beyond `std`:
//!
//! * [`pool`] — a channel-based [`ThreadPool`](pool::ThreadPool) sized from
//!   `std::thread::available_parallelism`, honouring the `ANOC_THREADS`
//!   override;
//! * [`campaign`] — a [`JobSpec`](campaign::JobSpec) planner that executes
//!   jobs in parallel and merges results deterministically in plan order,
//!   so parallel output is bit-identical to a serial run;
//! * [`cache`] — an on-disk, text-format [`ResultCache`](cache::ResultCache)
//!   keyed by a content hash of the job's canonical key, so warm re-runs
//!   skip simulation entirely;
//! * [`snapshot_store`] — an on-disk, binary
//!   [`SnapshotStore`](snapshot_store::SnapshotStore) holding post-warmup
//!   simulator states and mid-campaign checkpoints, so sweep cells sharing a
//!   warmup fork from one snapshot instead of replaying it;
//! * [`progress`] — live queued/running/done + ETA reporting on stderr.
//!
//! ## Example
//!
//! ```
//! use anoc_exec::campaign::{run_campaign, CampaignOptions, JobSpec};
//! use anoc_exec::pool::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let jobs: Vec<JobSpec<u64>> = (0..16)
//!     .map(|i| JobSpec::new(format!("square/{i}"), format!("square v1 n={i}"), move || i * i))
//!     .collect();
//! let (results, report) = run_campaign(&pool, None, jobs, &CampaignOptions::quiet(), None);
//! assert_eq!(results[7], 49); // plan order, regardless of completion order
//! assert_eq!(report.executed, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod hash;
pub mod pool;
pub mod progress;
pub mod snapshot_store;

pub use cache::ResultCache;
pub use campaign::{
    run_campaign, run_campaign_checked, CampaignOptions, CampaignOutcome, CampaignReport,
    CellError, CellFailure, JobSpec, ResultCodec, WarmupSpec,
};
pub use pool::{plan_threads, ThreadPool, WorkerSet};
pub use snapshot_store::SnapshotStore;
