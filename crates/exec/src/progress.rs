//! Live campaign observability on stderr.
//!
//! Reports jobs queued/running/done, per-job wall time and an ETA while a
//! campaign executes. Output goes to stderr so it never contaminates the
//! figure tables and CSV written to stdout. Verbosity is controlled by
//! `ANOC_PROGRESS`: `0` silences it, `1` forces it, and by default it is on
//! only when stderr is a terminal (so tests and redirected runs stay clean).

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How often intermediate progress lines may be emitted.
const THROTTLE: Duration = Duration::from_millis(200);

/// Whether progress output is enabled for this process.
pub fn enabled() -> bool {
    match std::env::var("ANOC_PROGRESS").ok().as_deref() {
        Some("0") => false,
        Some("1") => true,
        _ => std::io::stderr().is_terminal(),
    }
}

/// The `, eta 12.3s` fragment, or empty when no estimate is possible:
/// nothing finished yet, nothing left, or a zero elapsed clock (an
/// all-cached warm rerun resolves faster than the timer resolution, and
/// `0 / 0` here used to surface as `NaN` in the printed line).
fn eta_fragment(elapsed: Duration, done: usize, total: usize) -> String {
    if done == 0 || total <= done || elapsed.is_zero() {
        return String::new();
    }
    let per_job = elapsed.as_secs_f64() / done as f64;
    format!(", eta {:.1}s", per_job * (total - done) as f64)
}

/// The ` 1.23 Mcyc/s` throughput fragment, or empty when it would be
/// meaningless: no simulated cycles (cache hits simulate nothing) or a
/// zero-duration wall clock (which would divide to `inf`).
fn rate_fragment(sim_cycles: u64, wall: Duration) -> String {
    if sim_cycles == 0 || wall.is_zero() {
        return String::new();
    }
    format!(
        " {:.2} Mcyc/s",
        sim_cycles as f64 / wall.as_secs_f64() / 1e6
    )
}

/// Renders one per-job progress line from a snapshot of the counters.
#[allow(clippy::too_many_arguments)]
fn format_job_line(
    label: &str,
    done: usize,
    total: usize,
    running: usize,
    cache_hits: usize,
    elapsed: Duration,
    id: &str,
    wall: Duration,
    sim_cycles: Option<u64>,
) -> String {
    format!(
        "[{label}] {done}/{total} done ({running} running, {cache_hits} cached, {:.1}s elapsed{})  {id} {:.0}ms{}",
        elapsed.as_secs_f64(),
        eta_fragment(elapsed, done, total),
        wall.as_secs_f64() * 1e3,
        rate_fragment(sim_cycles.unwrap_or(0), wall),
    )
}

/// Renders the end-of-campaign summary line.
fn format_finish_line(
    label: &str,
    total: usize,
    executed: usize,
    cache_hits: usize,
    elapsed: Duration,
    sim_cycles: u64,
) -> String {
    let rate = rate_fragment(sim_cycles, elapsed);
    let rate = if rate.is_empty() {
        rate
    } else {
        format!(",{rate}")
    };
    format!(
        "[{label}] campaign complete: {total} jobs, {executed} executed, {cache_hits} cached, {:.1}s{rate}",
        elapsed.as_secs_f64(),
    )
}

/// Tracks and prints the state of one running campaign.
pub struct Progress {
    label: String,
    enabled: bool,
    state: Mutex<State>,
}

struct State {
    total: usize,
    done: usize,
    running: usize,
    cache_hits: usize,
    sim_cycles: u64,
    started: Instant,
    last_print: Option<Instant>,
}

impl Progress {
    /// Creates a tracker for `total` jobs under a campaign `label`,
    /// honouring the `ANOC_PROGRESS` policy.
    pub fn new(label: &str, total: usize) -> Self {
        Progress::with_enabled(label, total, enabled())
    }

    /// Creates a tracker with an explicit on/off switch (tests, `--quiet`).
    pub fn with_enabled(label: &str, total: usize, enabled: bool) -> Self {
        Progress {
            label: label.to_string(),
            enabled,
            state: Mutex::new(State {
                total,
                done: 0,
                running: 0,
                cache_hits: 0,
                sim_cycles: 0,
                started: Instant::now(),
                last_print: None,
            }),
        }
    }

    /// Records that `n` jobs were answered straight from the cache.
    pub fn cache_hits(&self, n: usize) {
        let mut s = self.lock();
        s.cache_hits += n;
        s.done += n;
    }

    /// Records a job moving from queued to running.
    pub fn job_started(&self) {
        self.lock().running += 1;
    }

    /// Records a job finishing; `id`, `wall` and the job's simulated cycle
    /// count (when known) feed the per-job line.
    pub fn job_finished(&self, id: &str, wall: Duration, sim_cycles: Option<u64>) {
        let line = {
            let mut s = self.lock();
            s.running = s.running.saturating_sub(1);
            s.done += 1;
            s.sim_cycles += sim_cycles.unwrap_or(0);
            let finished_all = s.done >= s.total;
            let due = s
                .last_print
                .map(|t| t.elapsed() >= THROTTLE)
                .unwrap_or(true);
            if !self.enabled || !(finished_all || due) {
                None
            } else {
                s.last_print = Some(Instant::now());
                Some(format_job_line(
                    &self.label,
                    s.done,
                    s.total,
                    s.running,
                    s.cache_hits,
                    s.started.elapsed(),
                    id,
                    wall,
                    sim_cycles,
                ))
            }
        };
        if let Some(line) = line {
            let _ = writeln!(std::io::stderr(), "{line}");
        }
    }

    /// Prints the campaign summary line (always, when enabled).
    pub fn finish(&self, executed: usize) {
        if !self.enabled {
            return;
        }
        let s = self.lock();
        let line = format_finish_line(
            &self.label,
            s.total,
            executed,
            s.cache_hits,
            s.started.elapsed(),
            s.sim_cycles,
        );
        let _ = writeln!(std::io::stderr(), "{line}");
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_lifecycle() {
        let p = Progress::with_enabled("test", 4, false);
        p.cache_hits(1);
        p.job_started();
        p.job_started();
        p.job_finished("a", Duration::from_millis(5), Some(10_000));
        p.job_finished("b", Duration::from_millis(7), None);
        let s = p.lock();
        assert_eq!(s.done, 3);
        assert_eq!(s.running, 0);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.sim_cycles, 10_000);
    }

    #[test]
    fn disabled_progress_never_prints_but_still_counts() {
        let p = Progress::with_enabled("quiet", 2, false);
        p.job_started();
        p.job_finished("x", Duration::ZERO, None);
        p.finish(1);
        assert_eq!(p.lock().done, 1);
    }

    fn assert_finite(line: &str) {
        assert!(
            !line.contains("NaN") && !line.contains("inf"),
            "non-finite value leaked into progress line: {line}"
        );
    }

    #[test]
    fn cold_run_line_reports_rate_and_eta() {
        let line = format_job_line(
            "fig9",
            1,
            4,
            2,
            0,
            Duration::from_secs(2),
            "ssca2/FP-VAXX/s42",
            Duration::from_secs(1),
            Some(3_000_000),
        );
        assert_finite(&line);
        assert!(line.contains("1/4 done"), "{line}");
        assert!(line.contains("eta 6.0s"), "{line}");
        assert!(line.contains("3.00 Mcyc/s"), "{line}");
    }

    #[test]
    fn all_cached_rerun_prints_no_nan_or_inf() {
        // A warm rerun answers everything from the cache: zero wall, zero
        // simulated cycles, zero executed jobs. Every divide must vanish
        // from the line instead of rendering NaN/inf.
        let line = format_job_line(
            "fig9",
            8,
            8,
            0,
            8,
            Duration::ZERO,
            "cached",
            Duration::ZERO,
            Some(0),
        );
        assert_finite(&line);
        assert!(!line.contains("eta"), "{line}");
        assert!(!line.contains("Mcyc/s"), "{line}");
        let summary = format_finish_line("fig9", 8, 0, 8, Duration::ZERO, 0);
        assert_finite(&summary);
        assert!(summary.contains("0 executed, 8 cached"), "{summary}");
        assert!(!summary.contains("Mcyc/s"), "{summary}");
    }

    #[test]
    fn zero_elapsed_with_pending_jobs_suppresses_eta() {
        assert_eq!(eta_fragment(Duration::ZERO, 1, 4), "");
        assert_eq!(eta_fragment(Duration::from_secs(1), 0, 4), "");
        assert_eq!(eta_fragment(Duration::from_secs(1), 4, 4), "");
        assert_eq!(rate_fragment(0, Duration::from_secs(1)), "");
        assert_eq!(rate_fragment(1_000, Duration::ZERO), "");
    }

    #[test]
    fn env_policy_parses() {
        // Cannot mutate the environment safely in parallel tests; just make
        // sure the function is callable and total.
        let _ = enabled();
    }
}
