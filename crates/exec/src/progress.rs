//! Live campaign observability on stderr.
//!
//! Reports jobs queued/running/done, per-job wall time and an ETA while a
//! campaign executes. Output goes to stderr so it never contaminates the
//! figure tables and CSV written to stdout. Verbosity is controlled by
//! `ANOC_PROGRESS`: `0` silences it, `1` forces it, and by default it is on
//! only when stderr is a terminal (so tests and redirected runs stay clean).

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How often intermediate progress lines may be emitted.
const THROTTLE: Duration = Duration::from_millis(200);

/// Whether progress output is enabled for this process.
pub fn enabled() -> bool {
    match std::env::var("ANOC_PROGRESS").ok().as_deref() {
        Some("0") => false,
        Some("1") => true,
        _ => std::io::stderr().is_terminal(),
    }
}

/// Tracks and prints the state of one running campaign.
pub struct Progress {
    label: String,
    enabled: bool,
    state: Mutex<State>,
}

struct State {
    total: usize,
    done: usize,
    running: usize,
    cache_hits: usize,
    sim_cycles: u64,
    started: Instant,
    last_print: Option<Instant>,
}

impl Progress {
    /// Creates a tracker for `total` jobs under a campaign `label`,
    /// honouring the `ANOC_PROGRESS` policy.
    pub fn new(label: &str, total: usize) -> Self {
        Progress::with_enabled(label, total, enabled())
    }

    /// Creates a tracker with an explicit on/off switch (tests, `--quiet`).
    pub fn with_enabled(label: &str, total: usize, enabled: bool) -> Self {
        Progress {
            label: label.to_string(),
            enabled,
            state: Mutex::new(State {
                total,
                done: 0,
                running: 0,
                cache_hits: 0,
                sim_cycles: 0,
                started: Instant::now(),
                last_print: None,
            }),
        }
    }

    /// Records that `n` jobs were answered straight from the cache.
    pub fn cache_hits(&self, n: usize) {
        let mut s = self.lock();
        s.cache_hits += n;
        s.done += n;
    }

    /// Records a job moving from queued to running.
    pub fn job_started(&self) {
        self.lock().running += 1;
    }

    /// Records a job finishing; `id`, `wall` and the job's simulated cycle
    /// count (when known) feed the per-job line.
    pub fn job_finished(&self, id: &str, wall: Duration, sim_cycles: Option<u64>) {
        let line = {
            let mut s = self.lock();
            s.running = s.running.saturating_sub(1);
            s.done += 1;
            s.sim_cycles += sim_cycles.unwrap_or(0);
            let finished_all = s.done >= s.total;
            let due = s
                .last_print
                .map(|t| t.elapsed() >= THROTTLE)
                .unwrap_or(true);
            if !self.enabled || !(finished_all || due) {
                None
            } else {
                s.last_print = Some(Instant::now());
                let elapsed = s.started.elapsed();
                let eta = if s.done > 0 && s.total > s.done {
                    let per_job = elapsed.as_secs_f64() / s.done as f64;
                    format!(", eta {:.1}s", per_job * (s.total - s.done) as f64)
                } else {
                    String::new()
                };
                let rate = match sim_cycles {
                    Some(c) if !wall.is_zero() => {
                        format!(" {:.2} Mcyc/s", c as f64 / wall.as_secs_f64() / 1e6)
                    }
                    _ => String::new(),
                };
                Some(format!(
                    "[{}] {}/{} done ({} running, {} cached, {:.1}s elapsed{eta})  {} {:.0}ms{rate}",
                    self.label,
                    s.done,
                    s.total,
                    s.running,
                    s.cache_hits,
                    elapsed.as_secs_f64(),
                    id,
                    wall.as_secs_f64() * 1e3,
                ))
            }
        };
        if let Some(line) = line {
            let _ = writeln!(std::io::stderr(), "{line}");
        }
    }

    /// Prints the campaign summary line (always, when enabled).
    pub fn finish(&self, executed: usize) {
        if !self.enabled {
            return;
        }
        let s = self.lock();
        let elapsed = s.started.elapsed();
        let rate = if s.sim_cycles > 0 && !elapsed.is_zero() {
            format!(
                ", {:.2} Mcyc/s",
                s.sim_cycles as f64 / elapsed.as_secs_f64() / 1e6
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            std::io::stderr(),
            "[{}] campaign complete: {} jobs, {} executed, {} cached, {:.1}s{rate}",
            self.label,
            s.total,
            executed,
            s.cache_hits,
            elapsed.as_secs_f64(),
        );
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_lifecycle() {
        let p = Progress::with_enabled("test", 4, false);
        p.cache_hits(1);
        p.job_started();
        p.job_started();
        p.job_finished("a", Duration::from_millis(5), Some(10_000));
        p.job_finished("b", Duration::from_millis(7), None);
        let s = p.lock();
        assert_eq!(s.done, 3);
        assert_eq!(s.running, 0);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.sim_cycles, 10_000);
    }

    #[test]
    fn disabled_progress_never_prints_but_still_counts() {
        let p = Progress::with_enabled("quiet", 2, false);
        p.job_started();
        p.job_finished("x", Duration::ZERO, None);
        p.finish(1);
        assert_eq!(p.lock().done, 1);
    }

    #[test]
    fn env_policy_parses() {
        // Cannot mutate the environment safely in parallel tests; just make
        // sure the function is callable and total.
        let _ = enabled();
    }
}
