//! A dependency-free, channel-based thread pool.
//!
//! Workers pull boxed jobs off a shared `mpsc` channel (the channel acts as
//! the work queue, giving natural work-stealing-like load balancing: a free
//! worker takes the next job regardless of which one stalls). Panics inside
//! jobs are caught per job and re-thrown from the submitting thread, so a
//! failing simulation cell surfaces exactly like it would serially.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing boxed jobs.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Task>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("anoc-exec-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, not while running.
                        let task = {
                            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match task {
                            Ok(task) => task(),
                            Err(_) => break, // all senders dropped: shut down
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Creates a pool sized by [`default_threads`].
    pub fn with_default_size() -> Self {
        ThreadPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("worker channel closed");
    }

    /// Runs every job and returns the results **in submission order**,
    /// regardless of which worker finished first — the property the campaign
    /// layer relies on for deterministic merges.
    ///
    /// # Panics
    ///
    /// After all jobs have finished, panics with a `String` payload listing
    /// **every** job that panicked (index and message), not just the first.
    pub fn run_ordered<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        self.run_ordered_observed(jobs, |_, _| {})
    }

    /// [`run_ordered`](Self::run_ordered) with a completion observer:
    /// `observe(index, &result)` runs on the submitting thread as each
    /// result arrives (completion order), for progress reporting.
    pub fn run_ordered_observed<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        observe: impl FnMut(usize, &T),
    ) -> Vec<T> {
        let results = self.run_ordered_results_observed(jobs, observe);
        let mut values = Vec::with_capacity(results.len());
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (idx, outcome) in results.into_iter().enumerate() {
            match outcome {
                Ok(value) => values.push(value),
                Err(msg) => failures.push((idx, msg)),
            }
        }
        if !failures.is_empty() {
            // Every failed job is reported, not just the first-by-index one:
            // a campaign debugging session needs the full picture in one shot.
            let mut report = format!("{} job(s) panicked:", failures.len());
            for (idx, msg) in &failures {
                report.push_str(&format!("\n  job {idx}: {msg}"));
            }
            resume_unwind(Box::new(report));
        }
        values
    }

    /// Runs every job, isolating panics per job: the result vector is in
    /// submission order with `Err(message)` for jobs that panicked. Never
    /// panics itself; the pool stays usable afterwards.
    pub fn run_ordered_results<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<Result<T, String>> {
        self.run_ordered_results_observed(jobs, |_, _| {})
    }

    /// [`run_ordered_results`](Self::run_ordered_results) with a completion
    /// observer: `observe(index, &result)` runs on the submitting thread as
    /// each successful result arrives (completion order).
    pub fn run_ordered_results_observed<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        mut observe: impl FnMut(usize, &T),
    ) -> Vec<Result<T, String>> {
        let n = jobs.len();
        let (tx, rx) = channel();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // A dropped receiver only happens when the submitter is
                // already unwinding; nothing useful to do with the error.
                let _ = tx.send((idx, outcome));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, outcome) = rx.recv().expect("worker died without reporting");
            match outcome {
                Ok(value) => {
                    observe(idx, &value);
                    slots[idx] = Some(Ok(value));
                }
                Err(payload) => slots[idx] = Some(Err(panic_message(payload.as_ref()))),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reported exactly once"))
            .collect()
    }
}

/// A job for one pinned worker: a caller-chosen tag, the owned item, and the
/// closure to run on it.
type PinnedJob<T> = (usize, T, Box<dyn FnOnce(&mut T) + Send + 'static>);

/// Slot states for the spin-synchronized per-worker mailbox.
const SLOT_IDLE: u8 = 0; // empty: the submitter may stage a job
const SLOT_READY: u8 = 1; // job staged: the worker should take it
const SLOT_RUNNING: u8 = 2; // worker owns the item
const SLOT_DONE: u8 = 3; // result staged: the submitter should take it

/// How many `spin_loop` iterations a waiter burns before conceding the CPU.
/// Phase gaps in the sharded cycle kernel are a few microseconds, so on a
/// multi-core host waits almost always resolve inside the spin window and
/// the park below is only a safety net. On a single-core host spinning is
/// pure harm — the waiter occupies the only CPU the other side needs — so
/// the budget collapses to zero and every wait yields immediately.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cpus > 1 {
            1 << 14
        } else {
            0
        }
    })
}

/// One worker's mailbox. The `Mutex`es are never contended (states hand
/// exclusive access back and forth); they exist to move the values across
/// threads in safe Rust while the atomic state carries the synchronization.
struct Slot<T> {
    state: std::sync::atomic::AtomicU8,
    job: Mutex<Option<PinnedJob<T>>>,
    result: Mutex<Option<(usize, T, Option<String>)>>,
}

struct SetShared<T> {
    slots: Vec<Slot<T>>,
    shutdown: std::sync::atomic::AtomicBool,
    outstanding: std::sync::atomic::AtomicUsize,
}

/// A set of persistent worker threads that operate on *owned* state handed
/// back and forth each round — the safe-Rust alternative to scoped mutable
/// sharing for phase-synchronous kernels (the sharded NoC cycle loop sends
/// each shard out for a phase and receives it back at the barrier).
///
/// Unlike [`ThreadPool`], submissions are pinned to a specific worker, and
/// the handoff is a spin-synchronized mailbox rather than a channel: the
/// cycle kernel synchronizes twice per simulated cycle, and the
/// futex sleep/wake round trips of a blocking channel cost more than an
/// entire phase of useful work. Workers spin briefly between jobs (parking
/// with a timeout once idle), so a barrier round trip stays in the
/// microsecond range while an idle set costs almost nothing.
pub struct WorkerSet<T: Send + 'static> {
    shared: Arc<SetShared<T>>,
    handles: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerSet<T> {
    /// Spawns `workers` persistent threads (minimum 1) named `{name}-{i}`.
    pub fn new(workers: usize, name: &str) -> Self {
        use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
        let workers = workers.max(1);
        let shared = Arc::new(SetShared {
            slots: (0..workers)
                .map(|_| Slot {
                    state: AtomicU8::new(SLOT_IDLE),
                    job: Mutex::new(None),
                    result: Mutex::new(None),
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        let slot = &shared.slots[i];
                        loop {
                            // Wait for a job: spin first, then park with a
                            // timeout (submit unparks, the timeout is a
                            // missed-wakeup safety net).
                            let mut spins = 0u32;
                            loop {
                                if shared.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                if slot.state.load(Ordering::Acquire) == SLOT_READY {
                                    break;
                                }
                                if spins < spin_limit() {
                                    spins += 1;
                                    std::hint::spin_loop();
                                } else {
                                    std::thread::park_timeout(std::time::Duration::from_millis(1));
                                }
                            }
                            let (tag, mut item, job) = lock(&slot.job)
                                .take()
                                .expect("READY slot always holds a job");
                            slot.state.store(SLOT_RUNNING, Ordering::Release);
                            // Isolate panics so the item always comes home;
                            // the submitting thread re-throws on receive.
                            let outcome = catch_unwind(AssertUnwindSafe(|| job(&mut item)));
                            let failed = outcome.err().map(|p| panic_message(p.as_ref()));
                            *lock(&slot.result) = Some((tag, item, failed));
                            slot.state.store(SLOT_DONE, Ordering::Release);
                        }
                    })
                    .expect("spawn pinned worker thread")
            })
            .collect();
        WorkerSet { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Hands `item` to worker `worker` (modulo the worker count) to run
    /// `job`; `tag` is echoed back by [`WorkerSet::recv`]. Returns `false`
    /// if the set is shutting down. If that worker still has an uncollected
    /// job, waits for the slot to clear (a previous `recv` must collect it).
    pub fn submit(
        &self,
        worker: usize,
        tag: usize,
        item: T,
        job: impl FnOnce(&mut T) + Send + 'static,
    ) -> bool {
        use std::sync::atomic::Ordering;
        if self.shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        let idx = worker % self.handles.len();
        let slot = &self.shared.slots[idx];
        // One job in flight per worker: wait out a slot still carrying the
        // previous round (it can only drain through recv on this thread's
        // schedule, so this is effectively never hit by the cycle kernel).
        let mut spins = 0u32;
        while slot.state.load(Ordering::Acquire) != SLOT_IDLE {
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        *lock(&slot.job) = Some((tag, item, Box::new(job)));
        slot.state.store(SLOT_READY, Ordering::Release);
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        self.handles[idx].thread().unpark();
        true
    }

    /// Receives one finished item, in completion order across workers.
    /// Returns `None` if no submitted job is outstanding.
    ///
    /// # Panics
    ///
    /// Re-throws the job's panic on the receiving thread, after the item has
    /// been recovered from the worker (the item itself is dropped then).
    pub fn recv(&self) -> Option<(usize, T)> {
        use std::sync::atomic::Ordering;
        if self.shared.outstanding.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut spins = 0u32;
        loop {
            for slot in &self.shared.slots {
                if slot.state.load(Ordering::Acquire) != SLOT_DONE {
                    continue;
                }
                let (tag, item, failed) = lock(&slot.result)
                    .take()
                    .expect("DONE slot always holds a result");
                slot.state.store(SLOT_IDLE, Ordering::Release);
                self.shared.outstanding.fetch_sub(1, Ordering::AcqRel);
                if let Some(msg) = failed {
                    resume_unwind(Box::new(msg));
                }
                return Some((tag, item));
            }
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Locks a never-contended mailbox mutex, surviving poison (a panicked job
/// is already isolated by `catch_unwind`; the mutex data is always whole).
fn lock<V>(m: &Mutex<V>) -> std::sync::MutexGuard<'_, V> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T: Send + 'static> Drop for WorkerSet<T> {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Splits a total thread budget between campaign-level workers and
/// per-simulation shard workers so `--threads N` is never oversubscribed:
/// with `shards` threads serving each simulation, at most `N / shards` cells
/// run concurrently. Returns `(campaign_workers, shards)`, both at least 1;
/// `shards` is clamped to the budget.
pub fn plan_threads(total: usize, shards: usize) -> (usize, usize) {
    let total = total.max(1);
    let shards = shards.clamp(1, total);
    ((total / shards).max(1), shards)
}

/// Extracts the human-readable message of a panic payload (`String` or
/// `&str` payloads, which is what `panic!` produces; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // close the queue
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The default worker count: the `ANOC_THREADS` environment variable if set
/// (minimum 1), otherwise `std::thread::available_parallelism`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ANOC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(8);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Reverse the natural completion order.
                    std::thread::sleep(std::time::Duration::from_micros(64 - i as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run_ordered(jobs);
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn all_workers_participate() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = (0..32)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    std::thread::current().name().unwrap_or("?").to_string()
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        let names: std::collections::BTreeSet<String> =
            pool.run_ordered(jobs).into_iter().collect();
        assert!(names.len() > 1, "only one worker ran: {names:?}");
    }

    #[test]
    fn observer_sees_every_completion() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let seen = AtomicUsize::new(0);
        let results = pool.run_ordered_observed(jobs, |idx, value| {
            assert_eq!(*value, idx * 2);
            // anoc-lint: allow(X001): test counter; run_ordered_observed joins before the read
            seen.fetch_add(1, Ordering::Relaxed);
        });
        // anoc-lint: allow(X001): read after the pool joined; no concurrent writers left
        assert_eq!(seen.load(Ordering::Relaxed), 10);
        assert_eq!(results.len(), 10);
    }

    #[test]
    fn pool_survives_and_reports_job_panics() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("cell {i} exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_ordered(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cell 3 exploded"), "{msg}");
        // The pool is still usable afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 7usize) as Box<dyn FnOnce() -> usize + Send>];
        assert_eq!(pool.run_ordered(jobs), vec![7]);
    }

    #[test]
    fn every_panicked_job_is_reported() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i % 3 == 1 {
                        panic!("job {i} failed");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_ordered(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        for i in [1usize, 4, 7] {
            assert!(msg.contains(&format!("job {i} failed")), "{msg}");
        }
        assert!(msg.contains("3 job(s) panicked"), "{msg}");
    }

    #[test]
    fn results_api_isolates_panics_per_job() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom {i}");
                    }
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run_ordered_results(jobs);
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r.as_ref().unwrap_err(), "boom 2");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10);
            }
        }
        // The pool is still usable afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>];
        assert_eq!(pool.run_ordered(jobs), vec![1]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_set_pins_items_and_returns_them() {
        let set: WorkerSet<Vec<u32>> = WorkerSet::new(3, "test");
        assert_eq!(set.workers(), 3);
        // Dispatch one owned item to each worker, mutate it there, and
        // collect everything back by tag.
        for tag in 0..3usize {
            let sent = set.submit(tag, tag, vec![tag as u32], move |v| {
                v.push(99);
            });
            assert!(sent);
        }
        let mut got: Vec<Option<Vec<u32>>> = vec![None; 3];
        for _ in 0..3 {
            let (tag, item) = set.recv().expect("worker alive");
            got[tag] = Some(item);
        }
        for (tag, item) in got.into_iter().enumerate() {
            assert_eq!(item.expect("all tags returned"), vec![tag as u32, 99]);
        }
    }

    #[test]
    fn worker_set_propagates_panics_to_the_receiver() {
        let set: WorkerSet<u32> = WorkerSet::new(1, "panicky");
        assert!(set.submit(0, 7, 1, |_| panic!("shard blew up")));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| set.recv()));
        assert!(caught.is_err(), "worker panic must resurface on recv");
    }

    #[test]
    fn plan_threads_divides_the_budget() {
        // 8 cores, 4 shards: two campaign workers, each driving 4 shard
        // threads — exactly the total budget.
        assert_eq!(plan_threads(8, 4), (2, 4));
        assert_eq!(plan_threads(8, 1), (8, 1));
        // Shards are clamped to the budget; the campaign level degrades to
        // one worker rather than zero.
        assert_eq!(plan_threads(2, 4), (1, 2));
        assert_eq!(plan_threads(1, 1), (1, 1));
        assert_eq!(plan_threads(3, 2), (1, 2));
    }

    #[test]
    fn single_thread_pool_is_strictly_serial() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    let inside = counter.fetch_add(1, Ordering::SeqCst);
                    let v = counter.load(Ordering::SeqCst);
                    counter.fetch_sub(1, Ordering::SeqCst);
                    assert_eq!(v - inside, 1, "two jobs ran concurrently");
                    inside
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        pool.run_ordered(jobs);
    }
}
