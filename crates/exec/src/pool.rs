//! A dependency-free, channel-based thread pool.
//!
//! Workers pull boxed jobs off a shared `mpsc` channel (the channel acts as
//! the work queue, giving natural work-stealing-like load balancing: a free
//! worker takes the next job regardless of which one stalls). Panics inside
//! jobs are caught per job and re-thrown from the submitting thread, so a
//! failing simulation cell surfaces exactly like it would serially.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool executing boxed jobs.
pub struct ThreadPool {
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with exactly `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Task>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("anoc-exec-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, not while running.
                        let task = {
                            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match task {
                            Ok(task) => task(),
                            Err(_) => break, // all senders dropped: shut down
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Creates a pool sized by [`default_threads`].
    pub fn with_default_size() -> Self {
        ThreadPool::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is shutting down")
            .send(Box::new(job))
            .expect("worker channel closed");
    }

    /// Runs every job and returns the results **in submission order**,
    /// regardless of which worker finished first — the property the campaign
    /// layer relies on for deterministic merges.
    ///
    /// # Panics
    ///
    /// After all jobs have finished, panics with a `String` payload listing
    /// **every** job that panicked (index and message), not just the first.
    pub fn run_ordered<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        self.run_ordered_observed(jobs, |_, _| {})
    }

    /// [`run_ordered`](Self::run_ordered) with a completion observer:
    /// `observe(index, &result)` runs on the submitting thread as each
    /// result arrives (completion order), for progress reporting.
    pub fn run_ordered_observed<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        observe: impl FnMut(usize, &T),
    ) -> Vec<T> {
        let results = self.run_ordered_results_observed(jobs, observe);
        let mut values = Vec::with_capacity(results.len());
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (idx, outcome) in results.into_iter().enumerate() {
            match outcome {
                Ok(value) => values.push(value),
                Err(msg) => failures.push((idx, msg)),
            }
        }
        if !failures.is_empty() {
            // Every failed job is reported, not just the first-by-index one:
            // a campaign debugging session needs the full picture in one shot.
            let mut report = format!("{} job(s) panicked:", failures.len());
            for (idx, msg) in &failures {
                report.push_str(&format!("\n  job {idx}: {msg}"));
            }
            resume_unwind(Box::new(report));
        }
        values
    }

    /// Runs every job, isolating panics per job: the result vector is in
    /// submission order with `Err(message)` for jobs that panicked. Never
    /// panics itself; the pool stays usable afterwards.
    pub fn run_ordered_results<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<Result<T, String>> {
        self.run_ordered_results_observed(jobs, |_, _| {})
    }

    /// [`run_ordered_results`](Self::run_ordered_results) with a completion
    /// observer: `observe(index, &result)` runs on the submitting thread as
    /// each successful result arrives (completion order).
    pub fn run_ordered_results_observed<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
        mut observe: impl FnMut(usize, &T),
    ) -> Vec<Result<T, String>> {
        let n = jobs.len();
        let (tx, rx) = channel();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // A dropped receiver only happens when the submitter is
                // already unwinding; nothing useful to do with the error.
                let _ = tx.send((idx, outcome));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<T, String>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, outcome) = rx.recv().expect("worker died without reporting");
            match outcome {
                Ok(value) => {
                    observe(idx, &value);
                    slots[idx] = Some(Ok(value));
                }
                Err(payload) => slots[idx] = Some(Err(panic_message(payload.as_ref()))),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job reported exactly once"))
            .collect()
    }
}

/// Extracts the human-readable message of a panic payload (`String` or
/// `&str` payloads, which is what `panic!` produces; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // close the queue
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The default worker count: the `ANOC_THREADS` environment variable if set
/// (minimum 1), otherwise `std::thread::available_parallelism`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ANOC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(8);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Reverse the natural completion order.
                    std::thread::sleep(std::time::Duration::from_micros(64 - i as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run_ordered(jobs);
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn all_workers_participate() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = (0..32)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    std::thread::current().name().unwrap_or("?").to_string()
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        let names: std::collections::BTreeSet<String> =
            pool.run_ordered(jobs).into_iter().collect();
        assert!(names.len() > 1, "only one worker ran: {names:?}");
    }

    #[test]
    fn observer_sees_every_completion() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let seen = AtomicUsize::new(0);
        let results = pool.run_ordered_observed(jobs, |idx, value| {
            assert_eq!(*value, idx * 2);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 10);
        assert_eq!(results.len(), 10);
    }

    #[test]
    fn pool_survives_and_reports_job_panics() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("cell {i} exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_ordered(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cell 3 exploded"), "{msg}");
        // The pool is still usable afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 7usize) as Box<dyn FnOnce() -> usize + Send>];
        assert_eq!(pool.run_ordered(jobs), vec![7]);
    }

    #[test]
    fn every_panicked_job_is_reported() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i % 3 == 1 {
                        panic!("job {i} failed");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_ordered(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        for i in [1usize, 4, 7] {
            assert!(msg.contains(&format!("job {i} failed")), "{msg}");
        }
        assert!(msg.contains("3 job(s) panicked"), "{msg}");
    }

    #[test]
    fn results_api_isolates_panics_per_job() {
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..5usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom {i}");
                    }
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run_ordered_results(jobs);
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(r.as_ref().unwrap_err(), "boom 2");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10);
            }
        }
        // The pool is still usable afterwards.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>];
        assert_eq!(pool.run_ordered(jobs), vec![1]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn single_thread_pool_is_strictly_serial() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    let inside = counter.fetch_add(1, Ordering::SeqCst);
                    let v = counter.load(Ordering::SeqCst);
                    counter.fetch_sub(1, Ordering::SeqCst);
                    assert_eq!(v - inside, 1, "two jobs ran concurrently");
                    inside
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        pool.run_ordered(jobs);
    }
}
