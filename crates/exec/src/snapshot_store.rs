//! The on-disk snapshot store.
//!
//! Sits beside [`ResultCache`](crate::ResultCache) but holds *binary*
//! simulator snapshots instead of text results: post-warmup states keyed by
//! the warmup half of a sweep cell's configuration (so cells differing only
//! inside the measurement window fork from one shared warmup), and
//! mid-measurement checkpoints keyed by the full cell (so a killed campaign
//! resumes instead of restarting).
//!
//! Entries are named by the FNV-1a digest of the key and carry a store-level
//! magic plus the full key (digest collisions are misses, never wrong
//! snapshots) ahead of the opaque blob:
//!
//! ```text
//! [8  bytes] b"ANOCSSTR"
//! [8  bytes] key length, little-endian u64
//! [n  bytes] key (UTF-8)
//! [..      ] blob
//! ```
//!
//! The blob's own integrity (simulator format version, config fingerprint)
//! is the snapshot layer's job; the store only frames and names it. Writes
//! go through a uniquely named temp file and an atomic rename, exactly like
//! the result cache, so concurrent campaign workers never observe torn
//! snapshots.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::key_digest;

/// Magic first bytes of every snapshot-store file.
const STORE_MAGIC: &[u8; 8] = b"ANOCSSTR";

/// A directory of stored simulator snapshots.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// Opens the default store location: `$ANOC_SNAPSHOT_DIR` if set, else
    /// `target/anoc-snapshots` under the current directory.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory cannot be created.
    pub fn open_default() -> io::Result<Self> {
        SnapshotStore::open(default_snapshot_dir())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.snap", key_digest(key)))
    }

    /// Looks up `key`, returning the stored blob on a hit.
    ///
    /// Unreadable, malformed or colliding entries are misses — a snapshot
    /// store can never fail a campaign, only make it colder.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let mut f = std::fs::File::open(self.path_of(key)).ok()?;
        let mut header = [0u8; 16];
        f.read_exact(&mut header).ok()?;
        if &header[..8] != STORE_MAGIC {
            return None;
        }
        let key_len = u64::from_le_bytes([
            header[8], header[9], header[10], header[11], header[12], header[13], header[14],
            header[15],
        ]);
        let key_len = usize::try_from(key_len).ok()?;
        if key_len != key.len() {
            return None; // cheap pre-check before reading the key bytes
        }
        let mut stored_key = vec![0u8; key_len];
        f.read_exact(&mut stored_key).ok()?;
        if stored_key != key.as_bytes() {
            return None; // digest collision
        }
        let mut blob = Vec::new();
        f.read_to_end(&mut blob).ok()?;
        Some(blob)
    }

    /// Stores `blob` under `key`, replacing any previous entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the entry.
    pub fn put(&self, key: &str, blob: &[u8]) -> io::Result<()> {
        // Same uniqueness discipline as ResultCache::put: pid + process-wide
        // counter, so concurrent puts of one digest never share a temp file.
        // SeqCst only because X001 audits every relaxed atomic in this crate
        // and uniqueness is all that matters here; the fence is noise next
        // to the file I/O below.
        static PUT_SEQ: AtomicU64 = AtomicU64::new(0);
        let final_path = self.path_of(key);
        let tmp_path = self.dir.join(format!(
            ".{}.tmp-{}-{}",
            key_digest(key),
            std::process::id(),
            PUT_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(STORE_MAGIC)?;
            f.write_all(&(key.len() as u64).to_le_bytes())?;
            f.write_all(key.as_bytes())?;
            f.write_all(blob)?;
        }
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Removes the entry for `key`, if present. Returns whether an entry was
    /// removed. Used to retire a cell's checkpoint once it completes.
    ///
    /// # Errors
    ///
    /// Propagates deletion errors other than the file not existing.
    pub fn remove(&self, key: &str) -> io::Result<bool> {
        match std::fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Number of snapshots currently stored.
    pub fn len(&self) -> usize {
        self.entry_paths().count()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of all snapshots in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.entry_paths()
            .filter_map(|p| p.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Deletes every snapshot, returning how many were removed. Orphaned
    /// `.tmp-` files are swept too (uncounted — they were never entries).
    ///
    /// # Errors
    ///
    /// Propagates the first deletion error.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for path in self.entry_paths().collect::<Vec<_>>() {
            std::fs::remove_file(path)?;
            removed += 1;
        }
        let strays: Vec<_> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with('.') && n.contains(".tmp-"))
            })
            .collect();
        for path in strays {
            std::fs::remove_file(path)?;
        }
        Ok(removed)
    }

    /// Only committed entries qualify: `<16-hex-digest>.snap`. In-flight
    /// `.tmp-` files are invisible, mirroring the result cache.
    fn entry_paths(&self) -> impl Iterator<Item = PathBuf> {
        std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "snap")
                    && p.file_stem()
                        .and_then(|s| s.to_str())
                        .is_some_and(|s| s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit()))
            })
    }
}

/// The default snapshot directory: `$ANOC_SNAPSHOT_DIR` or
/// `target/anoc-snapshots`.
pub fn default_snapshot_dir() -> PathBuf {
    std::env::var_os("ANOC_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("anoc-snapshots"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("anoc-exec-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("open temp store")
    }

    #[test]
    fn binary_roundtrip() {
        let store = temp_store("roundtrip");
        assert!(store.get("warmup a").is_none());
        let blob: Vec<u8> = (0..=255).collect();
        store.put("warmup a", &blob).expect("put");
        assert_eq!(store.get("warmup a").as_deref(), Some(&blob[..]));
        assert_eq!(store.len(), 1);
        assert!(store.size_bytes() > blob.len() as u64);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keys_do_not_alias_and_collisions_are_misses() {
        let store = temp_store("alias");
        store.put("cell a", b"A").expect("put");
        store.put("cell b", b"B").expect("put");
        assert_eq!(store.get("cell a").as_deref(), Some(&b"A"[..]));
        assert_eq!(store.get("cell b").as_deref(), Some(&b"B"[..]));
        assert!(store.get("cell c").is_none());
        // Same digest file, different stored key: a miss, never key b's blob.
        let path = store.dir().join(format!("{}.snap", key_digest("cell a")));
        let mut forged = Vec::new();
        forged.extend_from_slice(STORE_MAGIC);
        forged.extend_from_slice(&(b"other".len() as u64).to_le_bytes());
        forged.extend_from_slice(b"other");
        forged.extend_from_slice(b"blob");
        std::fs::write(&path, forged).expect("write");
        assert!(store.get("cell a").is_none());
        // Garbage content is also just a miss.
        std::fs::write(&path, b"junk").expect("write");
        assert!(store.get("cell a").is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn remove_and_clear() {
        let store = temp_store("remove");
        store.put("checkpoint x", b"state").expect("put");
        assert!(store.remove("checkpoint x").expect("remove"));
        assert!(!store.remove("checkpoint x").expect("second remove"));
        assert!(store.get("checkpoint x").is_none());
        for i in 0..3 {
            store.put(&format!("k{i}"), b"s").expect("put");
        }
        let orphan = store.dir().join(".feedfacefeedface.tmp-1-2");
        std::fs::write(&orphan, b"half").expect("write orphan");
        assert_eq!(store.len(), 3, "orphan visible");
        assert_eq!(store.clear().expect("clear"), 3);
        assert!(!orphan.exists(), "orphan survived clear");
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn overwrite_replaces_blob() {
        let store = temp_store("overwrite");
        store.put("k", b"old").expect("put");
        store.put("k", b"new longer blob").expect("put");
        assert_eq!(store.get("k").as_deref(), Some(&b"new longer blob"[..]));
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn default_dir_honors_env() {
        // Uses the documented env var without mutating the process env
        // (other tests run in parallel): just check the fallback shape.
        let d = default_snapshot_dir();
        assert!(d.ends_with("anoc-snapshots") || std::env::var_os("ANOC_SNAPSHOT_DIR").is_some());
    }
}
