//! The on-disk result cache.
//!
//! Entries are plain text files named by the FNV-1a digest of the job's
//! canonical key. Each file stores the full key (so hash collisions are
//! detected and treated as misses, never as wrong results) followed by the
//! serialized payload:
//!
//! ```text
//! # anoc-cache v1
//! key fig9 config{...} mechanism=FP-VAXX benchmark=ssca2 seed=42
//! ---
//! <payload lines...>
//! ```
//!
//! Writes go through a uniquely named temp file and an atomic rename, so
//! concurrent campaign workers never observe torn entries.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::key_digest;

/// Magic first line of every cache file.
const MAGIC: &str = "# anoc-cache v1";

/// A directory of cached campaign results.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// Opens the default cache location: `$ANOC_CACHE_DIR` if set, else
    /// `target/anoc-cache` under the current directory.
    ///
    /// # Errors
    ///
    /// Propagates the error if the directory cannot be created.
    pub fn open_default() -> io::Result<Self> {
        ResultCache::open(default_cache_dir())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.txt", key_digest(key)))
    }

    /// Looks up `key`, returning the stored payload on a hit.
    ///
    /// Unreadable, malformed or colliding entries are misses — a cache can
    /// never fail a campaign, only slow it down.
    pub fn get(&self, key: &str) -> Option<String> {
        let content = std::fs::read_to_string(self.path_of(key)).ok()?;
        let mut lines = content.splitn(4, '\n');
        if lines.next()? != MAGIC {
            return None;
        }
        let stored_key = lines.next()?.strip_prefix("key ")?;
        if stored_key != key {
            return None; // digest collision
        }
        if lines.next()? != "---" {
            return None;
        }
        Some(lines.next().unwrap_or("").to_string())
    }

    /// Stores `payload` under `key`, replacing any previous entry.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the entry.
    pub fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        // The pid alone is not unique: two pool workers putting entries with
        // the same digest would share a temp file and could rename a torn
        // mix of their writes into place. A process-wide counter makes every
        // put's temp file distinct.
        static PUT_SEQ: AtomicU64 = AtomicU64::new(0);
        assert!(!key.contains('\n'), "cache keys must be single-line");
        let final_path = self.path_of(key);
        let tmp_path = self.dir.join(format!(
            ".{}.tmp-{}-{}",
            key_digest(key),
            std::process::id(),
            // anoc-lint: allow(X001): tmp-name uniqueness counter; no ordering dependency
            PUT_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            writeln!(f, "{MAGIC}")?;
            writeln!(f, "key {key}")?;
            writeln!(f, "---")?;
            f.write_all(payload.as_bytes())?;
        }
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entry_paths().count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size of all entries in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.entry_paths()
            .filter_map(|p| p.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// Iterates over the payloads of every well-formed entry (unreadable or
    /// malformed files are skipped, like in [`get`](Self::get)). The cache
    /// is payload-agnostic; this exists so tooling layered on top can
    /// inspect stored payloads — e.g. report a format-version mix — without
    /// the cache knowing the payload schema.
    pub fn payloads(&self) -> impl Iterator<Item = String> + '_ {
        self.entry_paths().filter_map(|p| {
            let content = std::fs::read_to_string(p).ok()?;
            let mut lines = content.splitn(4, '\n');
            if lines.next()? != MAGIC {
                return None;
            }
            lines.next()?.strip_prefix("key ")?;
            if lines.next()? != "---" {
                return None;
            }
            Some(lines.next().unwrap_or("").to_string())
        })
    }

    /// Deletes every entry, returning how many were removed. Also sweeps
    /// orphaned temp files (left behind by a put whose process died between
    /// create and rename); they are not counted — they were never entries.
    ///
    /// # Errors
    ///
    /// Propagates the first deletion error.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for path in self.entry_paths().collect::<Vec<_>>() {
            std::fs::remove_file(path)?;
            removed += 1;
        }
        for path in stray_tmp_paths(&self.dir).collect::<Vec<_>>() {
            std::fs::remove_file(path)?;
        }
        Ok(removed)
    }

    /// Only committed entries qualify: `<16-hex-digest>.txt`. In-flight
    /// `.tmp-` files (and anything else in the directory) are invisible to
    /// iteration, statistics and clearing-by-count, so a put racing with a
    /// stats call can never be observed half-written.
    fn entry_paths(&self) -> impl Iterator<Item = PathBuf> {
        std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "txt")
                    && p.file_stem()
                        .and_then(|s| s.to_str())
                        .is_some_and(|s| s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit()))
            })
    }
}

/// Files matching the in-flight temp-file shape: hidden (`.`-prefixed) names
/// containing the `.tmp-` marker [`ResultCache::put`] uses before its atomic
/// rename.
fn stray_tmp_paths(dir: &Path) -> impl Iterator<Item = PathBuf> {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with('.') && n.contains(".tmp-"))
        })
}

/// The default cache directory: `$ANOC_CACHE_DIR` or `target/anoc-cache`.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("ANOC_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("anoc-cache"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("anoc-exec-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).expect("open temp cache")
    }

    #[test]
    fn roundtrip_hit() {
        let cache = temp_cache("roundtrip");
        assert!(cache.get("k1").is_none());
        cache.put("k1", "line a\nline b\n").expect("put");
        assert_eq!(cache.get("k1").as_deref(), Some("line a\nline b\n"));
        assert_eq!(cache.len(), 1);
        assert!(cache.size_bytes() > 0);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn different_keys_do_not_alias() {
        let cache = temp_cache("alias");
        cache.put("config a", "A").expect("put");
        cache.put("config b", "B").expect("put");
        assert_eq!(cache.get("config a").as_deref(), Some("A"));
        assert_eq!(cache.get("config b").as_deref(), Some("B"));
        assert!(cache.get("config c").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn collision_or_corruption_is_a_miss() {
        let cache = temp_cache("corrupt");
        cache.put("real key", "payload").expect("put");
        let path = cache.dir().join(format!("{}.txt", key_digest("real key")));
        // Corrupt the stored key: same digest file, different key line.
        std::fs::write(&path, format!("{MAGIC}\nkey other key\n---\npayload")).expect("write");
        assert!(cache.get("real key").is_none());
        // Garbage content is also just a miss.
        std::fs::write(&path, "not a cache file").expect("write");
        assert!(cache.get("real key").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn clear_removes_everything() {
        let cache = temp_cache("clear");
        for i in 0..5 {
            cache.put(&format!("key {i}"), "x").expect("put");
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.clear().expect("clear"), 5);
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn concurrent_puts_of_one_key_never_tear() {
        // Hammer a single key from many threads: every get must observe one
        // writer's complete payload, never a mix, and no temp files survive.
        let cache = temp_cache("race");
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    let payload = format!("writer {t}\n").repeat(200);
                    for _ in 0..50 {
                        cache.put("contended key", &payload).expect("put");
                        let got = cache.get("contended key").expect("entry exists");
                        let writer = got.lines().next().expect("nonempty");
                        assert!(got.lines().all(|l| l == writer), "torn entry mixes writers");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("writer thread");
        }
        assert_eq!(cache.len(), 1);
        let leftovers: Vec<_> = std::fs::read_dir(cache.dir())
            .expect("read dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn payloads_iterates_entries_and_skips_malformed_files() {
        let cache = temp_cache("payloads");
        cache.put("k1", "# fmt v1\nbody").expect("put");
        cache.put("k2", "# fmt v2\nbody").expect("put");
        // A malformed file with a valid-looking name must be skipped.
        let bogus = cache.dir().join("00000000deadbeef.txt");
        std::fs::write(&bogus, "not a cache file").expect("write");
        let mut firsts: Vec<String> = cache
            .payloads()
            .filter_map(|p| p.lines().next().map(str::to_string))
            .collect();
        firsts.sort();
        assert_eq!(firsts, vec!["# fmt v1", "# fmt v2"]);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stray_tmp_files_are_invisible_and_swept_by_clear() {
        // A process killed between temp-file create and rename leaves a
        // `.tmp-` orphan behind. It must not count as an entry, must not
        // appear in payload iteration or size accounting, and clear() must
        // sweep it without counting it.
        let cache = temp_cache("straytmp");
        cache.put("k", "payload").expect("put");
        let size_before = cache.size_bytes();
        let orphan = cache.dir().join(".deadbeefdeadbeef.tmp-999-0");
        std::fs::write(&orphan, "half-written entry").expect("write orphan");
        assert_eq!(cache.len(), 1, "orphan counted as an entry");
        assert_eq!(cache.payloads().count(), 1);
        assert_eq!(cache.size_bytes(), size_before, "orphan counted in size");
        assert!(cache.get("k").is_some());
        assert_eq!(cache.clear().expect("clear"), 1, "orphan inflated count");
        assert!(!orphan.exists(), "orphan survived clear");
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn overwrite_replaces_payload() {
        let cache = temp_cache("overwrite");
        cache.put("k", "old").expect("put");
        cache.put("k", "new").expect("put");
        assert_eq!(cache.get("k").as_deref(), Some("new"));
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
