//! Stable content hashing for cache keys.
//!
//! `std::hash::DefaultHasher` is explicitly unstable across releases, so the
//! cache uses FNV-1a (64-bit): trivial, dependency-free and stable forever —
//! cache files written by one toolchain stay valid under the next.

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hashes a string key into the fixed-width hex form used for cache file
/// names.
pub fn key_digest(key: &str) -> String {
    format!("{:016x}", fnv1a64(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_stable_and_distinct() {
        let a = key_digest("fig9 seed=42");
        assert_eq!(a, key_digest("fig9 seed=42"));
        assert_ne!(a, key_digest("fig9 seed=43"));
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
