//! Property-based tests for the lint front end: the lexer and the
//! brace-matched item tree must be total over arbitrary token soup. A panic
//! in either would turn a stray byte in any workspace file into a broken
//! `anoc lint` run, so the core property is "never panics, and every span
//! stays inside the file"; on top of that, the brace matcher must agree
//! with a naive depth walk about whether the file is balanced — imbalance
//! is *reported* (as L000 input for the rules), never mis-scoped silently.

use anoc_lint::lexer::{lex, TokKind};
use anoc_lint::syntax::{build, ScopeKind};
use anoc_lint::{context_for, lint_source};
use proptest::prelude::*;

/// Source fragments chosen to stress every lexer state and matcher
/// transition: item keywords, attributes, directives (well- and malformed),
/// braces hidden in strings/chars/comments, unterminated literals.
const FRAGMENTS: [&str; 36] = [
    "fn step",
    "pub fn phase_a",
    "mod kernel",
    "impl NetStats",
    "impl fmt::Display for Router",
    "struct S",
    "enum E",
    "trait T",
    "union U",
    "where T: Clone",
    "{",
    "}",
    "{ }",
    ";",
    "( )",
    "#[cfg(test)]",
    "#[test]",
    "#![forbid(unsafe_code)]",
    "// anoc-lint: phase(A)",
    "// anoc-lint: phase(A) trailing",
    "// anoc-lint: allow(D001): reason given",
    "// anoc-lint: allow(D001)",
    "// anoc-lint: rng-site: seeded from config",
    "// anoc-lint: rng-site",
    "// plain comment with { brace",
    "\"a string with { and }\"",
    "'{'",
    "'a",
    "\"unterminated",
    "let x = 1.5e3;",
    "x.unwrap()",
    "if v == 0.0",
    "Pcg32::seed_from_u64(7)",
    "n.load(Ordering::Relaxed)",
    "self.eject_flit(0)",
    "total as u32",
];

fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            prop::sample::select(FRAGMENTS.to_vec()),
            prop::sample::select(vec![" ", "\n", "\n\n", "\t"]),
        ),
        0..48,
    )
    .prop_map(|pieces| {
        let mut src = String::new();
        for (frag, sep) in pieces {
            src.push_str(frag);
            src.push_str(sep);
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer is total and every recorded line is inside the file.
    #[test]
    fn lexer_never_panics_and_lines_are_in_bounds(src in soup()) {
        let lexed = lex(&src);
        let last = src.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= last, "token line {} of {last}", t.line);
        }
        for s in &lexed.suppressions {
            prop_assert!(s.line >= 1 && s.line <= last);
        }
        for m in &lexed.malformed {
            prop_assert!(m.line >= 1 && m.line <= last);
        }
        for a in &lexed.annotations {
            prop_assert!(a.line >= 1 && a.line <= last);
        }
        for r in &lexed.rng_sites {
            prop_assert!(r.line >= 1 && r.line <= last);
        }
    }

    /// The item tree is total, parents precede children, and every scope's
    /// span is ordered (header <= open <= close) and inside the file.
    #[test]
    fn item_tree_invariants_hold(src in soup()) {
        let lexed = lex(&src);
        let tree = build(&lexed);
        let last = src.lines().count().max(1) as u32;
        prop_assert!(!tree.scopes.is_empty(), "root scope always present");
        prop_assert_eq!(tree.scopes[0].kind, ScopeKind::Root);
        for (i, s) in tree.scopes.iter().enumerate().skip(1) {
            prop_assert!(s.parent < i, "parent {} of scope {i}", s.parent);
            prop_assert!(s.header_line <= s.open_line, "{:?}", s);
            prop_assert!(s.open_line <= s.close_line, "{:?}", s);
            prop_assert!(s.close_line <= last, "{:?} vs {last} lines", s);
        }
        for &line in &tree.dangling_phase {
            prop_assert!(line >= 1 && line <= last);
        }
    }

    /// The matcher agrees with a naive depth walk over the token stream:
    /// balance errors are reported exactly when the walk goes negative or
    /// ends off zero. (Braces inside strings/chars/comments never reach the
    /// token stream, so the naive walk sees the same braces the matcher
    /// does.)
    #[test]
    fn balance_errors_match_naive_depth_walk(src in soup()) {
        let lexed = lex(&src);
        let tree = build(&lexed);
        let mut depth = 0i64;
        let mut went_negative = false;
        for t in &lexed.tokens {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            went_negative = true;
                            depth = 0; // the matcher discards the stray `}`
                        }
                    }
                    _ => {}
                }
            }
        }
        let unbalanced = went_negative || depth != 0;
        prop_assert_eq!(
            !tree.balance_errors.is_empty(),
            unbalanced,
            "depth walk says unbalanced={}, matcher reported {:?}",
            unbalanced,
            tree.balance_errors
        );
    }

    /// The full per-file pipeline (lex → tree → every rule family) is total
    /// under the strictest context: a sim-critical crate root.
    #[test]
    fn lint_source_is_total_on_token_soup(src in soup()) {
        let ctx = context_for("crates/noc/src/lib.rs");
        let (violations, _suppressed) = lint_source(&ctx, &src);
        let last = src.lines().count().max(1) as u32;
        for v in &violations {
            // C002 reports line 1 even for empty files; everything else
            // anchors to a real token line.
            prop_assert!(v.line >= 1 && v.line <= last.max(1));
        }
    }
}
