//! Self-check: the real workspace must be lint-clean. A new wall-clock
//! read, hash-ordered collection or unannotated panic in a sim-critical
//! crate fails this test (and CI) immediately.

use std::path::Path;

use anoc_lint::{lint_root, Baseline, Options};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    root
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_root(root).expect("lint workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered = report.render_human();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{rendered}"
    );
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        0
    );
}

/// The committed baseline must stay in sync with reality: no grandfathered
/// findings (the tree is clean), and a suppression budget the live count
/// does not exceed. If a suppression was legitimately added, regenerate with
/// `cargo run -p anoc-lint -- --write-baseline lint-baseline.json`.
#[test]
fn committed_baseline_matches_workspace() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("committed lint-baseline.json at the workspace root");
    let baseline = Baseline::parse(&text).expect("parse committed baseline");
    assert!(
        baseline.entries.is_empty(),
        "the workspace carries grandfathered findings; burn them down or \
         justify each in the PR: {:?}",
        baseline.entries
    );
    let report = lint_root(root).expect("lint workspace");
    assert!(
        report.suppressed <= baseline.suppressed,
        "live suppression count {} exceeds the committed budget {}; fix the \
         finding or regenerate the baseline deliberately",
        report.suppressed,
        baseline.suppressed
    );
}
