//! Self-check: the real workspace must be lint-clean. A new wall-clock
//! read, hash-ordered collection or unannotated panic in a sim-critical
//! crate fails this test (and CI) immediately.

use std::path::Path;

use anoc_lint::{lint_root, Options};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_root(root).expect("lint workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let rendered = report.render_human();
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{rendered}"
    );
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        0
    );
}
