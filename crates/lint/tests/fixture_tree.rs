//! End-to-end acceptance test: a synthetic workspace tree with exactly one
//! seeded violation per rule must make `anoc-lint --deny` report every rule
//! and exit nonzero, while the cleaned-up twin exits zero.

use std::path::{Path, PathBuf};

use anoc_lint::{lint_root, Options};

/// A scratch directory that cleans up after itself.
struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("anoc-lint-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create fixture root");
        TempTree(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture files have parents"))
            .expect("create fixture dirs");
        std::fs::write(path, contents).expect("write fixture file");
    }

    fn root(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const WORKSPACE_MANIFEST: &str = "[workspace]\nmembers = [\"crates/*\"]\n";

#[test]
fn seeded_tree_trips_every_rule_and_denies() {
    let tree = TempTree::new("dirty");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    // One violation per rule, spread over a sim-critical crate.
    tree.write(
        "crates/noc/src/lib.rs",
        // Missing #![forbid(unsafe_code)] => C002 fires on the crate root.
        "//! Fixture crate root.\n\
         pub mod kernel;\n",
    );
    tree.write(
        "crates/noc/src/kernel.rs",
        "use std::collections::HashMap;\n\
         pub fn startup() -> u64 {\n\
             let t = std::time::Instant::now();\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             let x = m.get(&0).unwrap();\n\
             if *x as f64 == 0.0 {\n\
                 println!(\"zero\");\n\
             }\n\
             t.elapsed().as_secs()\n\
         }\n\
         // anoc-lint: allow(D001)\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule_id).collect();
    for rule in ["L000", "D001", "D002", "D003", "C001", "C002", "H001"] {
        assert!(fired.contains(&rule), "rule {rule} did not fire: {fired:?}");
    }
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        1
    );
    // Errors alone already fail the default mode (D001/D002/C002/L000).
    assert_eq!(report.exit_code(&Options::default()), 1);
}

#[test]
fn clean_tree_is_quiet() {
    let tree = TempTree::new("clean");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n\
         #![forbid(unsafe_code)]\n\
         pub mod kernel;\n",
    );
    tree.write(
        "crates/noc/src/kernel.rs",
        "use std::collections::BTreeMap;\n\
         pub fn startup(seed: u64) -> Option<u64> {\n\
             let m: BTreeMap<u64, u64> = BTreeMap::new();\n\
             m.get(&seed).copied()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn t() {\n\
                 assert_eq!(super::startup(1), None); // tests may panic\n\
             }\n\
         }\n",
    );
    // Suppressed findings stay out of the report but are counted.
    tree.write(
        "crates/traffic/src/lib.rs",
        "//! Fixture.\n\
         #![forbid(unsafe_code)]\n\
         // anoc-lint: allow(D002): scratch map, iteration order never observed\n\
         pub type Scratch = std::collections::HashMap<u32, u32>;\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        0
    );
}

#[test]
fn non_sim_crates_may_use_clocks_and_prints() {
    let tree = TempTree::new("exec");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/exec/src/lib.rs",
        "//! Progress reporting is allowed to read the clock and print.\n\
         #![forbid(unsafe_code)]\n\
         pub fn tick() {\n\
             let t = std::time::Instant::now();\n\
             eprintln!(\"elapsed {:?}\", t.elapsed());\n\
         }\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
}
