//! End-to-end acceptance test: a synthetic workspace tree with exactly one
//! seeded violation per rule must make `anoc-lint --deny` report every rule
//! and exit nonzero, while the cleaned-up twin exits zero.

use std::path::{Path, PathBuf};

use anoc_lint::{apply_baseline, lint_root, Baseline, Options};

/// A scratch directory that cleans up after itself.
struct TempTree(PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("anoc-lint-fixture-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create fixture root");
        TempTree(dir)
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.0.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture files have parents"))
            .expect("create fixture dirs");
        std::fs::write(path, contents).expect("write fixture file");
    }

    fn root(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const WORKSPACE_MANIFEST: &str = "[workspace]\nmembers = [\"crates/*\"]\n";

#[test]
fn seeded_tree_trips_every_rule_and_denies() {
    let tree = TempTree::new("dirty");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    // One violation per rule, spread over a sim-critical crate.
    tree.write(
        "crates/noc/src/lib.rs",
        // Missing #![forbid(unsafe_code)] => C002 fires on the crate root.
        "//! Fixture crate root.\n\
         pub mod kernel;\n",
    );
    tree.write(
        "crates/noc/src/kernel.rs",
        "use std::collections::HashMap;\n\
         pub fn startup() -> u64 {\n\
             let t = std::time::Instant::now();\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             let x = m.get(&0).unwrap();\n\
             if *x as f64 == 0.0 {\n\
                 println!(\"zero\");\n\
             }\n\
             t.elapsed().as_secs()\n\
         }\n\
         // anoc-lint: allow(D001)\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule_id).collect();
    for rule in ["L000", "D001", "D002", "D003", "C001", "C002", "H001"] {
        assert!(fired.contains(&rule), "rule {rule} did not fire: {fired:?}");
    }
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        1
    );
    // Errors alone already fail the default mode (D001/D002/C002/L000).
    assert_eq!(report.exit_code(&Options::default()), 1);
}

#[test]
fn clean_tree_is_quiet() {
    let tree = TempTree::new("clean");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n\
         #![forbid(unsafe_code)]\n\
         pub mod kernel;\n",
    );
    tree.write(
        "crates/noc/src/kernel.rs",
        "use std::collections::BTreeMap;\n\
         pub fn startup(seed: u64) -> Option<u64> {\n\
             let m: BTreeMap<u64, u64> = BTreeMap::new();\n\
             m.get(&seed).copied()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn t() {\n\
                 assert_eq!(super::startup(1), None); // tests may panic\n\
             }\n\
         }\n",
    );
    // Suppressed findings stay out of the report but are counted.
    tree.write(
        "crates/traffic/src/lib.rs",
        "//! Fixture.\n\
         #![forbid(unsafe_code)]\n\
         // anoc-lint: allow(D002): scratch map, iteration order never observed\n\
         pub type Scratch = std::collections::HashMap<u32, u32>;\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        0
    );
}

/// One deliberately-violating fixture per v2 rule (D004, D005, X001, C003):
/// each must fire, produce exit 1 under both modes, and serialize as a
/// schema-stable JSON finding.
#[test]
fn new_rule_families_fire_and_deny() {
    let tree = TempTree::new("v2-dirty");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n\
         #![forbid(unsafe_code)]\n\
         pub mod jitter;\npub mod phase;\npub mod stats;\n",
    );
    // D004: seeded construction without an rng-site annotation.
    tree.write(
        "crates/noc/src/jitter.rs",
        "pub fn jitter() -> u32 {\n\
             let mut r = Pcg32::seed_from_u64(42);\n\
             r.next_u32()\n\
         }\n",
    );
    // D005: a phase(A) root reaching a serial-edge mutator via a helper.
    tree.write(
        "crates/noc/src/phase.rs",
        "// anoc-lint: phase(A)\n\
         pub fn phase_a(s: &mut Sim) { helper(s); }\n\
         fn helper(s: &mut Sim) { s.eject_flit(0); }\n",
    );
    // C003: narrowing cast in a stats file.
    tree.write(
        "crates/noc/src/stats.rs",
        "impl NetStats {\n\
             pub fn rate(&self) -> u32 { self.flits_delivered as u32 }\n\
         }\n",
    );
    // X001: Relaxed ordering in exec library code.
    tree.write(
        "crates/exec/src/lib.rs",
        "//! Fixture exec root.\n\
         #![forbid(unsafe_code)]\n\
         pub fn poll(s: &std::sync::atomic::AtomicU8) -> u8 {\n\
             s.load(std::sync::atomic::Ordering::Relaxed)\n\
         }\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule_id).collect();
    for rule in ["D004", "D005", "X001", "C003"] {
        assert!(fired.contains(&rule), "rule {rule} did not fire: {fired:?}");
    }
    // D004/D005/X001 are errors: the default mode already fails; C003 is a
    // warning, covered by --deny.
    assert_eq!(report.exit_code(&Options::default()), 1);
    assert_eq!(
        report.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        1
    );
    // Schema-stable JSON: every new-rule finding serializes with the fixed
    // key order (rule before severity before path).
    let json = report.render_json();
    assert!(json.contains("\"version\": 2"));
    assert!(json.contains(
        "{\"rule\": \"D004\", \"severity\": \"error\", \"path\": \"crates/noc/src/jitter.rs\""
    ));
    assert!(json.contains(
        "{\"rule\": \"D005\", \"severity\": \"error\", \"path\": \"crates/noc/src/phase.rs\""
    ));
    assert!(json.contains(
        "{\"rule\": \"C003\", \"severity\": \"warning\", \"path\": \"crates/noc/src/stats.rs\""
    ));
    assert!(json.contains(
        "{\"rule\": \"X001\", \"severity\": \"error\", \"path\": \"crates/exec/src/lib.rs\""
    ));
}

/// The v2 rules stay quiet when the contracts are honored: annotated RNG
/// sites, a phase root with a read-only call chain, audited Relaxed.
#[test]
fn new_rules_pass_when_contracts_are_honored() {
    let tree = TempTree::new("v2-clean");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n\
         #![forbid(unsafe_code)]\n\
         pub mod kernel;\n",
    );
    tree.write(
        "crates/noc/src/kernel.rs",
        "// anoc-lint: rng-site: seeded from the sim config, one stream per run\n\
         pub fn rng(seed: u64) -> Pcg32 { Pcg32::seed_from_u64(seed) }\n\
         // anoc-lint: phase(A)\n\
         pub fn phase_a(s: &Sim) -> u64 { peek(s) }\n\
         fn peek(s: &Sim) -> u64 { s.now }\n\
         pub fn edge(s: &mut Sim) { s.eject_flit(0); }\n",
    );
    tree.write(
        "crates/exec/src/lib.rs",
        "//! Fixture exec root.\n\
         #![forbid(unsafe_code)]\n\
         pub fn bump(n: &std::sync::atomic::AtomicU64) {\n\
             // anoc-lint: allow(X001): monotonic counter, read only after join\n\
             n.fetch_add(1, std::sync::atomic::Ordering::Relaxed);\n\
         }\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1); // the X001 audit
}

/// Test trees (`tests/`, `examples/`, `crates/*/tests/`) are walked and get
/// the hygiene family only: clocks/maps/unwraps pass, malformed directives
/// still fail — a typo'd suppression in a test tree must not fail open.
#[test]
fn test_trees_are_walked_with_hygiene_rules_only() {
    let tree = TempTree::new("test-trees");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n#![forbid(unsafe_code)]\n",
    );
    tree.write(
        "crates/noc/tests/helper.rs",
        "use std::collections::HashMap;\n\
         fn scratch() -> HashMap<u32, u32> {\n\
             let t = std::time::Instant::now();\n\
             let _ = t.elapsed();\n\
             HashMap::new()\n\
         }\n\
         #[test]\n\
         fn t() { scratch().insert(1, 2).unwrap(); }\n",
    );
    tree.write(
        "examples/demo.rs",
        "fn main() {\n    println!(\"demo output is fine\");\n}\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "test trees should be hygiene-only: {:?}",
        report.findings
    );

    // A malformed directive in the same tree is still an L000 error.
    tree.write(
        "tests/integration.rs",
        "// anoc-lint: allow(D001)\nfn main() {}\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    let fired: Vec<(&str, &str)> = report
        .findings
        .iter()
        .map(|f| (f.rule_id, f.path.as_str()))
        .collect();
    assert_eq!(fired, vec![("L000", "tests/integration.rs")]);
    assert_eq!(report.exit_code(&Options::default()), 1);
}

/// The baseline workflow end-to-end: grandfather the current findings, stay
/// green; a new finding or suppression growth turns the run red again.
#[test]
fn baseline_grandfathers_and_catches_regressions() {
    let tree = TempTree::new("baseline");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/noc/src/lib.rs",
        "//! Fixture crate root.\n#![forbid(unsafe_code)]\npub mod old;\n",
    );
    tree.write(
        "crates/noc/src/old.rs",
        "pub fn legacy() -> u32 { Pcg32::seed_from_u64(1).next_u32() }\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert_eq!(report.findings.len(), 1); // the D004 legacy site

    // Snapshot it; the same tree under the baseline is green, even --deny.
    let baseline = Baseline::from_report(&report);
    let parsed = Baseline::parse(&baseline.render_json()).expect("round trip");
    let mut rerun = lint_root(tree.root()).expect("lint fixture tree");
    apply_baseline(&mut rerun, &parsed);
    assert!(rerun.findings.is_empty());
    assert_eq!(rerun.grandfathered, 1);
    assert_eq!(
        rerun.exit_code(&Options {
            deny: true,
            ..Options::default()
        }),
        0
    );

    // A brand-new violation is NOT grandfathered.
    tree.write(
        "crates/noc/src/fresh.rs",
        "pub fn fresh() -> u32 { Pcg32::seed_from_u64(2).next_u32() }\n",
    );
    let mut regressed = lint_root(tree.root()).expect("lint fixture tree");
    apply_baseline(&mut regressed, &parsed);
    assert_eq!(regressed.findings.len(), 1);
    assert_eq!(regressed.findings[0].path, "crates/noc/src/fresh.rs");
    assert_eq!(regressed.exit_code(&Options::default()), 1);

    // Suppression growth past the budget fails even with zero findings.
    let _ = std::fs::remove_file(tree.root().join("crates/noc/src/fresh.rs"));
    tree.write(
        "crates/noc/src/old.rs",
        "// anoc-lint: allow(D004): grandfathered legacy stream\n\
         pub fn legacy() -> u32 { Pcg32::seed_from_u64(1).next_u32() }\n",
    );
    let mut grown = lint_root(tree.root()).expect("lint fixture tree");
    assert!(grown.findings.is_empty());
    assert_eq!(grown.suppressed, 1);
    apply_baseline(&mut grown, &parsed); // budget was 0 suppressions
    assert_eq!(grown.exit_code(&Options::default()), 1);
}

#[test]
fn non_sim_crates_may_use_clocks_and_prints() {
    let tree = TempTree::new("exec");
    tree.write("Cargo.toml", WORKSPACE_MANIFEST);
    tree.write(
        "crates/exec/src/lib.rs",
        "//! Progress reporting is allowed to read the clock and print.\n\
         #![forbid(unsafe_code)]\n\
         pub fn tick() {\n\
             let t = std::time::Instant::now();\n\
             eprintln!(\"elapsed {:?}\", t.elapsed());\n\
         }\n",
    );
    let report = lint_root(tree.root()).expect("lint fixture tree");
    assert!(
        report.findings.is_empty(),
        "unexpected findings: {:?}",
        report.findings
    );
}
