//! `anoc-lint` — the standalone binary CI runs:
//! `cargo run --release -p anoc-lint -- --deny`.
//!
//! `anoc lint` routes to the same [`anoc_lint::run_cli`] driver.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(anoc_lint::run_cli(&args));
}
