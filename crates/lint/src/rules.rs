//! The repo-specific rule set.
//!
//! Every rule is grounded in a concrete hazard of this codebase: the result
//! cache and the golden-fingerprint test both assume that a
//! `(config, workload, seed)` triple reproduces identical bits, so anything
//! that can silently break bit-exactness (wall-clock reads, hash-iteration
//! order, float equality) is flagged at the source level, before it ever
//! reaches a simulation.
//!
//! | id   | severity | checks |
//! |------|----------|--------|
//! | L000 | error    | malformed `anoc-lint:` suppression comment |
//! | D001 | error    | `Instant::now` / `SystemTime` / `thread_rng` in a sim-critical crate |
//! | D002 | error    | `HashMap` / `HashSet` in a sim-critical crate |
//! | D003 | warning  | float `==` / `!=` against a float literal (non-test code) |
//! | C001 | warning  | `.unwrap()` / `.expect()` / `panic!` in sim-critical library code |
//! | C002 | error    | crate root missing `#![forbid(unsafe_code)]` |
//! | H001 | warning  | `println!` / `eprintln!` in sim-critical library code |
//!
//! Suppress a finding with a trailing or preceding comment:
//! `// anoc-lint: allow(D002): <reason>` — the reason is mandatory.

use crate::lexer::{Lexed, TokKind, Token};

/// Finding severity. `Error` fails the run; `Warning` fails under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A rule's stable identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// All rules, in report order.
pub const RULES: [Rule; 7] = [
    Rule {
        id: "L000",
        severity: Severity::Error,
        summary: "malformed anoc-lint suppression comment",
    },
    Rule {
        id: "D001",
        severity: Severity::Error,
        summary: "wall-clock or ambient randomness in a sim-critical crate",
    },
    Rule {
        id: "D002",
        severity: Severity::Error,
        summary: "hash-ordered collection in a sim-critical crate",
    },
    Rule {
        id: "D003",
        severity: Severity::Warning,
        summary: "exact float equality in stats/metrics code",
    },
    Rule {
        id: "C001",
        severity: Severity::Warning,
        summary: "panicking call in sim-critical library code",
    },
    Rule {
        id: "C002",
        severity: Severity::Error,
        summary: "crate root missing #![forbid(unsafe_code)]",
    },
    Rule {
        id: "H001",
        severity: Severity::Warning,
        summary: "direct stdout/stderr printing in sim-critical library code",
    },
];

pub fn rule(id: &str) -> &'static Rule {
    RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unknown rule id {id}"))
}

/// The crates whose behaviour feeds simulation statistics. Wall-clock,
/// hash-iteration order and panics are banned here; `exec`, `harness` and
/// the vendored `criterion`/`proptest` shims legitimately measure time and
/// print progress, so they are exempt from the D/H rules (C002 still
/// applies everywhere).
pub const SIM_CRITICAL_CRATES: [&str; 5] = ["noc", "compression", "core", "traffic", "apps"];

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Crate directory name under `crates/` (or the root package name).
    pub crate_name: String,
    /// Member of [`SIM_CRITICAL_CRATES`].
    pub sim_critical: bool,
    /// Under `tests/`, `benches/` or `examples/` — everything is test code.
    pub is_test_file: bool,
    /// Under `src/bin/` or a `main.rs` — CLI entry points may print/panic.
    pub is_bin: bool,
    /// A `src/lib.rs` — must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// One finding, pre-suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static Rule,
    pub line: u32,
    pub message: String,
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items inside a source
/// file. Files under `tests/` are handled by [`FileContext::is_test_file`].
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        // Collect the attribute token span `#[ ... ]`.
        let Some((attr, after)) = attribute_at(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attribute(attr) {
            i = after;
            continue;
        }
        // Skip any further attributes, then find the item's brace block.
        let mut j = after;
        while j < tokens.len() && tokens[j].kind == TokKind::Punct && tokens[j].text == "#" {
            match attribute_at(tokens, j) {
                Some((_, next)) => j = next,
                None => break,
            }
        }
        let start_line = tokens[i].line;
        let mut depth = 0usize;
        let mut end_line = start_line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    // A `}` at depth 0 closes an enclosing block: the
                    // attributed item was the last thing in it.
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j.max(i + 1);
    }
    regions
}

/// If `tokens[i]` opens an attribute (`#[...]` or `#![...]`), returns its
/// bracketed tokens and the index just past the closing `]`.
fn attribute_at(tokens: &[Token], i: usize) -> Option<(&[Token], usize)> {
    let mut j = i + 1;
    if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
        j += 1;
    }
    if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((&tokens[open + 1..j], j + 1));
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// `#[test]` or `#[cfg(test)]` — but not `#[cfg(not(test))]`.
fn is_test_attribute(attr: &[Token]) -> bool {
    let texts: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
    texts == ["test"] || texts == ["cfg", "(", "test", ")"]
}

/// Runs every applicable rule over one lexed file. Suppressions are applied
/// by the caller (so suppressed counts can be reported).
pub fn check(ctx: &FileContext, lexed: &Lexed) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in &lexed.malformed {
        out.push(Violation {
            rule: rule("L000"),
            line: m.line,
            message: format!("malformed anoc-lint directive: {}", m.detail),
        });
    }
    if ctx.is_crate_root {
        check_c002(lexed, &mut out);
    }
    if !ctx.sim_critical {
        out.sort_by_key(|v| (v.line, v.rule.id));
        return out;
    }
    let regions = if ctx.is_test_file {
        Vec::new()
    } else {
        test_regions(&lexed.tokens)
    };
    let in_test =
        |line: u32| ctx.is_test_file || regions.iter().any(|&(s, e)| s <= line && line <= e);
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let next = toks.get(i + 1);
        let next_is = |s: &str| next.map(|n| n.text == s).unwrap_or(false);
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // D001 — applies everywhere in a sim-critical crate, tests
                // included: a deterministic kernel never consults the clock.
                "Instant"
                    if next_is("::")
                        && toks.get(i + 2).map(|n| n.text == "now").unwrap_or(false) =>
                {
                    out.push(Violation {
                        rule: rule("D001"),
                        line: t.line,
                        message: "`Instant::now` in a sim-critical crate; wall-clock reads \
                                  belong in exec/harness progress paths"
                            .into(),
                    });
                }
                "SystemTime" | "thread_rng" => {
                    out.push(Violation {
                        rule: rule("D001"),
                        line: t.line,
                        message: format!(
                            "`{}` in a sim-critical crate; use the seeded RNG plumbed \
                             through the config",
                            t.text
                        ),
                    });
                }
                // D002 — hash iteration order is nondeterministic; tests are
                // included because trace/stat comparisons iterate helpers.
                "HashMap" | "HashSet" => {
                    out.push(Violation {
                        rule: rule("D002"),
                        line: t.line,
                        message: format!(
                            "`{}` in sim-critical crate `{}`: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or a Vec-indexed \
                             structure",
                            t.text, ctx.crate_name
                        ),
                    });
                }
                // C001 — library code must surface errors, not abort.
                "unwrap" | "expect"
                    if !ctx.is_bin
                        && !in_test(t.line)
                        && prev.map(|p| p.text == ".").unwrap_or(false)
                        && next_is("(") =>
                {
                    out.push(Violation {
                        rule: rule("C001"),
                        line: t.line,
                        message: format!(
                            "`.{}()` in sim-critical library code; return a Result or \
                             document the invariant with an allow",
                            t.text
                        ),
                    });
                }
                "panic" if !ctx.is_bin && !in_test(t.line) && next_is("!") => {
                    out.push(Violation {
                        rule: rule("C001"),
                        line: t.line,
                        message: "`panic!` in sim-critical library code; return a Result or \
                                  document the invariant with an allow"
                            .into(),
                    });
                }
                // H001 — output flows through stats/progress, never stdout.
                "println" | "eprintln" if !ctx.is_bin && !in_test(t.line) && next_is("!") => {
                    out.push(Violation {
                        rule: rule("H001"),
                        line: t.line,
                        message: format!(
                            "`{}!` in sim-critical library code; emit through stats or \
                             the progress reporter",
                            t.text
                        ),
                    });
                }
                _ => {}
            },
            // D003 — exact float equality: flagged when either side is a
            // float literal (type-level detection needs a real type checker).
            TokKind::Punct if (t.text == "==" || t.text == "!=") && !in_test(t.line) => {
                let float_adjacent = prev.map(|p| p.kind == TokKind::Float).unwrap_or(false)
                    || next.map(|n| n.kind == TokKind::Float).unwrap_or(false);
                if float_adjacent {
                    out.push(Violation {
                        rule: rule("D003"),
                        line: t.line,
                        message: format!(
                            "float `{}` comparison against a literal; compare with an \
                             epsilon or document the exact-value sentinel with an allow",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out.sort_by_key(|v| (v.line, v.rule.id));
    out
}

/// C002: the crate root must open with `#![forbid(unsafe_code)]`.
fn check_c002(lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" {
            if let Some((attr, after)) = attribute_at(toks, i) {
                let texts: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
                if texts == ["forbid", "(", "unsafe_code", ")"] {
                    return;
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out.push(Violation {
        rule: rule("C002"),
        line: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sim_ctx() -> FileContext {
        FileContext {
            path: "crates/noc/src/sim.rs".into(),
            crate_name: "noc".into(),
            sim_critical: true,
            ..FileContext::default()
        }
    }

    fn check_src(ctx: &FileContext, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        check(ctx, &lexed)
            .into_iter()
            .filter(|v| !lexed.is_suppressed(v.rule.id, v.line))
            .collect()
    }

    fn ids(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.id).collect()
    }

    #[test]
    fn d001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "let t = Instant::now();")),
            vec!["D001"]
        );
        assert_eq!(
            ids(&check_src(
                &ctx,
                "let r = thread_rng(); let s = SystemTime::now();"
            )),
            vec!["D001", "D001"]
        );
        assert!(check_src(
            &ctx,
            "let t = Instant::now(); // anoc-lint: allow(D001): test-only timing probe"
        )
        .is_empty());
        // An `Instant` that is not `::now` (e.g. stored value) passes.
        assert!(check_src(&ctx, "fn f(t: Instant) -> Instant { t }").is_empty());
        // Non-sim crates may read the clock.
        let exec = FileContext {
            crate_name: "exec".into(),
            sim_critical: false,
            ..FileContext::default()
        };
        assert!(check_src(&exec, "let t = Instant::now();").is_empty());
    }

    #[test]
    fn d002_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "use std::collections::HashMap;")),
            vec!["D002"]
        );
        assert!(check_src(
            &ctx,
            "// anoc-lint: allow(D002): ordering never observed\nlet m = HashSet::new();"
        )
        .is_empty());
        assert!(check_src(&ctx, "use std::collections::BTreeMap;").is_empty());
        // D002 applies inside #[cfg(test)] too — test helpers can leak order.
        assert_eq!(
            ids(&check_src(
                &ctx,
                "#[cfg(test)]\nmod tests { fn f() { let m = HashMap::new(); } }"
            )),
            vec!["D002"]
        );
    }

    #[test]
    fn d003_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(ids(&check_src(&ctx, "if x == 0.0 { y() }")), vec!["D003"]);
        assert_eq!(ids(&check_src(&ctx, "if 1e-9 != x { y() }")), vec!["D003"]);
        assert!(check_src(
            &ctx,
            "if x == 0.0 { y() } // anoc-lint: allow(D003): exact zero sentinel"
        )
        .is_empty());
        assert!(check_src(&ctx, "if x == 0 { y() }").is_empty());
        assert!(check_src(&ctx, "if (x - 0.5).abs() < 1e-9 { y() }").is_empty());
        // Test code may compare floats exactly.
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests { fn f() { assert!(q == 1.0); } }"
        )
        .is_empty());
    }

    #[test]
    fn c001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(ids(&check_src(&ctx, "let v = x.unwrap();")), vec!["C001"]);
        assert_eq!(
            ids(&check_src(&ctx, "let v = x.expect(\"invariant\");")),
            vec!["C001"]
        );
        assert_eq!(ids(&check_src(&ctx, "panic!(\"boom\");")), vec!["C001"]);
        assert!(check_src(
            &ctx,
            "let v = x.expect(\"q\"); // anoc-lint: allow(C001): slot is live by construction"
        )
        .is_empty());
        // unwrap_or / unwrap_or_default are fine.
        assert!(check_src(&ctx, "let v = x.unwrap_or(0).min(y.unwrap_or_default());").is_empty());
        // Test modules and test files may panic.
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests {\n #[test]\n fn t() { x.unwrap(); panic!(\"in test\"); }\n}"
        )
        .is_empty());
        let test_file = FileContext {
            is_test_file: true,
            ..sim_ctx()
        };
        assert!(check_src(&test_file, "x.unwrap();").is_empty());
        let bin = FileContext {
            is_bin: true,
            ..sim_ctx()
        };
        assert!(check_src(&bin, "x.unwrap();").is_empty());
    }

    #[test]
    fn c002_hits_and_passes() {
        let root = FileContext {
            is_crate_root: true,
            ..FileContext::default()
        };
        assert_eq!(
            ids(&check_src(&root, "//! Docs only.\npub fn f() {}")),
            vec!["C002"]
        );
        assert!(check_src(&root, "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}").is_empty());
        // Non-root files are not required to carry the attribute.
        assert!(check_src(&sim_ctx(), "pub fn f() {}").is_empty());
    }

    #[test]
    fn h001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "println!(\"latency {x}\");")),
            vec!["H001"]
        );
        assert_eq!(ids(&check_src(&ctx, "eprintln!(\"warn\");")), vec!["H001"]);
        assert!(check_src(
            &ctx,
            "eprintln!(\"x\"); // anoc-lint: allow(H001): debug hook behind env var"
        )
        .is_empty());
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests { fn f() { println!(\"dbg\"); } }"
        )
        .is_empty());
        // format!/write! are fine.
        assert!(check_src(&ctx, "let s = format!(\"{x}\");").is_empty());
    }

    #[test]
    fn l000_malformed_directive_is_an_error() {
        let vs = check_src(&sim_ctx(), "// anoc-lint: allow(D002)\nlet m = 1;");
        assert_eq!(ids(&vs), vec!["L000"]);
        assert_eq!(vs[0].rule.severity, Severity::Error);
    }

    #[test]
    fn violations_in_strings_and_comments_do_not_fire() {
        let ctx = sim_ctx();
        assert!(check_src(&ctx, "let s = \"HashMap::new() Instant::now\";").is_empty());
        assert!(check_src(&ctx, "// HashMap in prose\n/* x.unwrap() */").is_empty());
        assert!(check_src(&ctx, "let s = r#\"panic!(\"x\")\"#;").is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let vs = check_src(&sim_ctx(), "#[cfg(not(test))]\nfn f() { x.unwrap(); }");
        assert_eq!(ids(&vs), vec!["C001"]);
    }
}
