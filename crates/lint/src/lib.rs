//! # anoc-lint — workspace determinism & correctness static analysis
//!
//! The whole APPROX-NoC reproduction rests on bit-exact determinism: the
//! golden-fingerprint test pins every statistic of the paper's 4x4 cmesh
//! workloads, and `anoc-exec`'s result cache assumes a
//! `(config, workload, seed)` key always reproduces identical bits. This
//! crate enforces that invariant *statically*: a minimal std-only Rust lexer
//! ([`lexer`]) feeds a small set of repo-specific rules ([`rules`]) with
//! stable IDs, severity levels, inline suppressions and human or JSON output.
//!
//! Run it as `anoc lint [--json] [--deny]` through the unified CLI, or
//! directly with `cargo run --release -p anoc-lint -- --deny` (what CI does).
//!
//! Exit codes: `0` clean, `1` findings (errors; any finding under `--deny`),
//! `2` usage or I/O failure.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rules::{FileContext, Severity, Violation, SIM_CRITICAL_CRATES};

/// Options for one lint run.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit machine-readable JSON instead of human-readable lines.
    pub json: bool,
    /// Treat warnings as errors for the exit code.
    pub deny: bool,
}

/// One reportable finding, bound to its file.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule_id: &'static str,
    pub severity: Severity,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// The outcome of linting a file tree.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Process exit code under the given options.
    pub fn exit_code(&self, opts: &Options) -> i32 {
        let failing = if opts.deny {
            self.findings.len()
        } else {
            self.errors()
        };
        i32::from(failing > 0)
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {} {}: {}",
                f.path,
                f.line,
                f.rule_id,
                f.severity.as_str(),
                f.message
            );
        }
        let _ = writeln!(
            out,
            "anoc-lint: {} files, {} errors, {} warnings, {} suppressed",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed
        );
        out
    }

    /// Machine-readable rendering. The schema is stable (documented in
    /// EXPERIMENTS.md): `version`, `files_scanned`, `errors`, `warnings`,
    /// `suppressed`, and a `violations` array of
    /// `{rule, severity, path, line, message}` sorted by (path, line, rule).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"errors\": {},", self.errors());
        let _ = writeln!(out, "  \"warnings\": {},", self.warnings());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"violations\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                f.rule_id,
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lints one in-memory source file under an explicit context. The unit-test
/// entry point; [`lint_root`] drives it over a real tree.
pub fn lint_source(ctx: &FileContext, src: &str) -> (Vec<Violation>, usize) {
    let lexed = lexer::lex(src);
    let all = rules::check(ctx, &lexed);
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in all {
        if lexed.is_suppressed(v.rule.id, v.line) {
            suppressed += 1;
        } else {
            kept.push(v);
        }
    }
    (kept, suppressed)
}

/// Derives the rule context of `rel` (a `/`-separated workspace-relative
/// path).
pub fn context_for(rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "approx-noc".to_string()
    };
    let sim_critical = SIM_CRITICAL_CRATES.contains(&crate_name.as_str());
    let in_dir = |d: &str| parts.contains(&d);
    let file = parts.last().copied().unwrap_or("");
    let src_prefix = if parts.first() == Some(&"crates") {
        2
    } else {
        0
    };
    FileContext {
        path: rel.to_string(),
        crate_name,
        sim_critical,
        is_test_file: in_dir("tests") || in_dir("benches") || in_dir("examples"),
        is_bin: in_dir("bin") || file == "main.rs" || file == "build.rs",
        is_crate_root: parts.get(src_prefix).copied() == Some("src")
            && parts.get(src_prefix + 1).copied() == Some("lib.rs"),
    }
}

/// Walks `root` for workspace `.rs` files, in sorted (deterministic) order.
/// Skips `target/` and hidden directories.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace source file under `root`.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let ctx = context_for(&rel);
        let src = std::fs::read_to_string(&path)?;
        let (violations, suppressed) = lint_source(&ctx, &src);
        report.files_scanned += 1;
        report.suppressed += suppressed;
        for v in violations {
            report.findings.push(Finding {
                rule_id: v.rule.id,
                severity: v.rule.severity,
                path: rel.clone(),
                line: v.line,
                message: v.message,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule_id).cmp(&(&b.path, b.line, b.rule_id)));
    Ok(report)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Full CLI driver shared by the `anoc-lint` binary and `anoc lint`.
/// Accepts `--json`, `--deny` and `--root PATH`; prints the report to
/// stdout and returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut opts = Options::default();
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny" => opts.deny = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: anoc-lint [--json] [--deny] [--root PATH]");
                return 2;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    match lint_root(&root) {
        Ok(report) => {
            if opts.json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            report.exit_code(&opts)
        }
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", root.display());
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_classification() {
        let c = context_for("crates/noc/src/sim.rs");
        assert_eq!(c.crate_name, "noc");
        assert!(c.sim_critical && !c.is_test_file && !c.is_bin && !c.is_crate_root);

        let c = context_for("crates/compression/src/lib.rs");
        assert!(c.sim_critical && c.is_crate_root);

        let c = context_for("crates/noc/tests/integration.rs");
        assert!(c.sim_critical && c.is_test_file);

        let c = context_for("crates/exec/src/pool.rs");
        assert!(!c.sim_critical);

        let c = context_for("crates/harness/src/bin/fig9.rs");
        assert!(c.is_bin);

        let c = context_for("src/lib.rs");
        assert_eq!(c.crate_name, "approx-noc");
        assert!(c.is_crate_root && !c.sim_critical);

        let c = context_for("src/bin/anoc.rs");
        assert!(c.is_bin);

        let c = context_for("examples/latency_sweep.rs");
        assert!(c.is_test_file);
    }

    #[test]
    fn report_exit_codes() {
        let clean = Report::default();
        assert_eq!(clean.exit_code(&Options::default()), 0);
        assert_eq!(
            clean.exit_code(&Options {
                deny: true,
                ..Options::default()
            }),
            0
        );
        let mut warned = Report::default();
        warned.findings.push(Finding {
            rule_id: "C001",
            severity: Severity::Warning,
            path: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(warned.exit_code(&Options::default()), 0);
        assert_eq!(
            warned.exit_code(&Options {
                deny: true,
                ..Options::default()
            }),
            1
        );
        let mut errored = Report::default();
        errored.findings.push(Finding {
            rule_id: "D002",
            severity: Severity::Error,
            path: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(errored.exit_code(&Options::default()), 1);
    }

    #[test]
    fn json_schema_is_stable() {
        let mut r = Report {
            files_scanned: 2,
            suppressed: 1,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule_id: "D002",
            severity: Severity::Error,
            path: "crates/noc/src/sim.rs".into(),
            line: 69,
            message: "a \"quoted\" message".into(),
        });
        let json = r.render_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 0"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains(
            "{\"rule\": \"D002\", \"severity\": \"error\", \
             \"path\": \"crates/noc/src/sim.rs\", \"line\": 69, \
             \"message\": \"a \\\"quoted\\\" message\"}"
        ));
        // Key order is fixed: version before violations, rule before path.
        let v = json.find("\"version\"").unwrap();
        let f = json.find("\"files_scanned\"").unwrap();
        let vio = json.find("\"violations\"").unwrap();
        assert!(v < f && f < vio);
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let json = Report::default().render_json();
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn lint_source_counts_suppressions() {
        let ctx = context_for("crates/noc/src/x.rs");
        let (v, s) = lint_source(
            &ctx,
            "use std::collections::HashMap; // anoc-lint: allow(D002): scratch only\n",
        );
        assert!(v.is_empty());
        assert_eq!(s, 1);
    }
}
