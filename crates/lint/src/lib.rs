//! # anoc-lint — workspace determinism & correctness static analysis
//!
//! The whole APPROX-NoC reproduction rests on bit-exact determinism: the
//! golden-fingerprint test pins every statistic of the paper's 4x4 cmesh
//! workloads, and `anoc-exec`'s result cache assumes a
//! `(config, workload, seed)` key always reproduces identical bits. This
//! crate enforces that invariant *statically*: a minimal std-only Rust lexer
//! ([`lexer`]) feeds a brace-matched scope tree ([`syntax`]) and a set of
//! repo-specific rule families ([`rules`]) with stable IDs, severity levels,
//! inline suppressions and human or JSON output.
//!
//! Run it as `anoc lint [--json] [--deny] [--baseline FILE]` through the
//! unified CLI, or directly with
//! `cargo run --release -p anoc-lint -- --deny --baseline lint-baseline.json`
//! (what CI does). With `--baseline`, findings already recorded in the
//! committed baseline are *grandfathered* — the run fails only on new
//! findings and on suppression-count growth, so the grandfathered set can
//! be burned down incrementally without blocking unrelated work.
//! `--write-baseline FILE` regenerates the file from the current tree.
//!
//! Exit codes: `0` clean, `1` findings (errors; any finding under `--deny`;
//! suppression growth past the baseline budget), `2` usage or I/O failure.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod syntax;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rules::{FileContext, RuleConfig, Severity, Violation, SIM_CRITICAL_CRATES};

/// Options for one lint run.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Emit machine-readable JSON instead of human-readable lines.
    pub json: bool,
    /// Treat warnings as errors for the exit code.
    pub deny: bool,
}

/// One reportable finding, bound to its file.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule_id: &'static str,
    pub severity: Severity,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// The outcome of linting a file tree.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    /// Findings removed by [`apply_baseline`] because the committed baseline
    /// already records them.
    pub grandfathered: usize,
    /// The baseline's suppression budget, when one was applied: exceeding it
    /// fails the run even if no new findings surfaced.
    pub suppressed_budget: Option<usize>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Suppression count grew past the applied baseline's budget.
    pub fn suppression_growth(&self) -> bool {
        self.suppressed_budget
            .is_some_and(|budget| self.suppressed > budget)
    }

    /// Process exit code under the given options.
    pub fn exit_code(&self, opts: &Options) -> i32 {
        let failing = if opts.deny {
            self.findings.len()
        } else {
            self.errors()
        };
        i32::from(failing > 0 || self.suppression_growth())
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {} {}: {}",
                f.path,
                f.line,
                f.rule_id,
                f.severity.as_str(),
                f.message
            );
        }
        let _ = write!(
            out,
            "anoc-lint: {} files, {} errors, {} warnings, {} suppressed",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed
        );
        if self.suppressed_budget.is_some() {
            let _ = write!(out, ", {} grandfathered", self.grandfathered);
        }
        out.push('\n');
        if let Some(budget) = self.suppressed_budget {
            if self.suppressed > budget {
                let _ = writeln!(
                    out,
                    "anoc-lint: suppression count {} exceeds the baseline budget {}; \
                     fix the finding instead of adding an allow (or regenerate the \
                     baseline with --write-baseline if the growth is deliberate)",
                    self.suppressed, budget
                );
            }
        }
        out
    }

    /// Machine-readable rendering. The schema is stable (documented in
    /// EXPERIMENTS.md): `version`, `files_scanned`, `errors`, `warnings`,
    /// `suppressed`, `grandfathered`, `suppressed_budget` (number, or null
    /// when no baseline was applied), and a `violations` array of
    /// `{rule, severity, path, line, message}` sorted by (path, line, rule).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 2,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"errors\": {},", self.errors());
        let _ = writeln!(out, "  \"warnings\": {},", self.warnings());
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(out, "  \"grandfathered\": {},", self.grandfathered);
        match self.suppressed_budget {
            Some(b) => {
                let _ = writeln!(out, "  \"suppressed_budget\": {b},");
            }
            None => {
                let _ = writeln!(out, "  \"suppressed_budget\": null,");
            }
        }
        out.push_str("  \"violations\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                f.rule_id,
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A committed snapshot of the findings a tree is allowed to carry: per
/// `(rule, path)` counts plus a total suppression budget. `--baseline`
/// grandfathers up to `count` findings per entry and fails the run if the
/// live suppression count exceeds `suppressed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub suppressed: usize,
    pub entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Snapshots a (pre-baseline) report.
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &report.findings {
            *entries
                .entry((f.rule_id.to_string(), f.path.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            suppressed: report.suppressed,
            entries,
        }
    }

    /// Stable JSON rendering (sorted by rule, then path).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"entries\": [");
        for (i, ((rule, path), count)) in self.entries.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"count\": {}}}",
                json_escape(rule),
                json_escape(path),
                count
            );
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses the line-oriented subset of JSON that [`Baseline::render_json`]
    /// emits (std-only; no general JSON parser in the workspace).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut suppressed = None;
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix("\"suppressed\":") {
                suppressed = Some(
                    rest.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad suppressed count in `{line}`"))?,
                );
            } else if line.starts_with("{\"rule\":") {
                let rule = json_field_str(line, "rule")
                    .ok_or_else(|| format!("baseline entry missing rule: `{line}`"))?;
                let path = json_field_str(line, "path")
                    .ok_or_else(|| format!("baseline entry missing path: `{line}`"))?;
                let count = json_field_num(line, "count")
                    .ok_or_else(|| format!("baseline entry missing count: `{line}`"))?;
                *entries.entry((rule, path)).or_insert(0) += count;
            }
        }
        Ok(Baseline {
            suppressed: suppressed.ok_or("baseline is missing \"suppressed\"")?,
            entries,
        })
    }
}

fn json_field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

fn json_field_num(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Removes findings the baseline grandfathers (first `count` per
/// `(rule, path)`, in report order) and records the suppression budget so
/// [`Report::exit_code`] can fail on growth.
pub fn apply_baseline(report: &mut Report, baseline: &Baseline) {
    let mut budget = baseline.entries.clone();
    let mut kept = Vec::new();
    let mut grandfathered = 0usize;
    for f in report.findings.drain(..) {
        match budget.get_mut(&(f.rule_id.to_string(), f.path.clone())) {
            Some(n) if *n > 0 => {
                *n -= 1;
                grandfathered += 1;
            }
            _ => kept.push(f),
        }
    }
    report.findings = kept;
    report.grandfathered = grandfathered;
    report.suppressed_budget = Some(baseline.suppressed);
}

/// Lints one in-memory source file under an explicit context. The unit-test
/// entry point; [`lint_root`] drives it over a real tree.
pub fn lint_source(ctx: &FileContext, src: &str) -> (Vec<Violation>, usize) {
    lint_source_with(ctx, src, &RuleConfig::default())
}

/// [`lint_source`] with explicit rule parameters.
pub fn lint_source_with(ctx: &FileContext, src: &str, cfg: &RuleConfig) -> (Vec<Violation>, usize) {
    let lexed = lexer::lex(src);
    let all = rules::check_with(ctx, &lexed, cfg);
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for v in all {
        if lexed.is_suppressed(v.rule.id, v.line) {
            suppressed += 1;
        } else {
            kept.push(v);
        }
    }
    (kept, suppressed)
}

/// Derives the rule context of `rel` (a `/`-separated workspace-relative
/// path).
pub fn context_for(rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "approx-noc".to_string()
    };
    let sim_critical = SIM_CRITICAL_CRATES.contains(&crate_name.as_str());
    let in_dir = |d: &str| parts.contains(&d);
    let file = parts.last().copied().unwrap_or("");
    let src_prefix = if parts.first() == Some(&"crates") {
        2
    } else {
        0
    };
    FileContext {
        path: rel.to_string(),
        crate_name,
        sim_critical,
        is_test_file: in_dir("tests") || in_dir("benches") || in_dir("examples"),
        is_bin: in_dir("bin") || file == "main.rs" || file == "build.rs",
        is_crate_root: parts.get(src_prefix).copied() == Some("src")
            && parts.get(src_prefix + 1).copied() == Some("lib.rs"),
    }
}

/// Walks `root` for workspace `.rs` files, in sorted (deterministic) order.
/// Skips `target/` and hidden directories.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace source file under `root`.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    lint_root_with(root, &RuleConfig::default())
}

/// [`lint_root`] with explicit rule parameters.
pub fn lint_root_with(root: &Path, cfg: &RuleConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let ctx = context_for(&rel);
        let src = std::fs::read_to_string(&path)?;
        let (violations, suppressed) = lint_source_with(&ctx, &src, cfg);
        report.files_scanned += 1;
        report.suppressed += suppressed;
        for v in violations {
            report.findings.push(Finding {
                rule_id: v.rule.id,
                severity: v.rule.severity,
                path: rel.clone(),
                line: v.line,
                message: v.message,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule_id).cmp(&(&b.path, b.line, b.rule_id)));
    Ok(report)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Full CLI driver shared by the `anoc-lint` binary and `anoc lint`.
/// Accepts `--json`, `--deny`, `--root PATH`, `--baseline FILE`,
/// `--write-baseline FILE` and repeatable `--phase-deny NAME`; prints the
/// report to stdout and returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    const USAGE: &str = "usage: anoc-lint [--json] [--deny] [--root PATH] \
                         [--baseline FILE] [--write-baseline FILE] [--phase-deny NAME]";
    let mut opts = Options::default();
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut cfg = RuleConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny" => opts.deny = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root needs a path");
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline needs a file path");
                    return 2;
                }
            },
            "--write-baseline" => match it.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --write-baseline needs a file path");
                    return 2;
                }
            },
            "--phase-deny" => match it.next() {
                Some(name) => cfg.phase_deny.push(name.clone()),
                None => {
                    eprintln!("error: --phase-deny needs a function name");
                    return 2;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("{USAGE}");
                return 2;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "error: no workspace Cargo.toml found above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    match lint_root_with(&root, &cfg) {
        Ok(mut report) => {
            if let Some(path) = &write_baseline {
                let base = Baseline::from_report(&report);
                if let Err(e) = std::fs::write(path, base.render_json()) {
                    eprintln!("error: cannot write baseline {}: {e}", path.display());
                    return 2;
                }
                eprintln!(
                    "anoc-lint: wrote baseline to {} ({} entries, {} suppressed)",
                    path.display(),
                    base.entries.len(),
                    base.suppressed
                );
                return 0;
            }
            if let Some(path) = &baseline {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read baseline {}: {e}", path.display());
                        return 2;
                    }
                };
                match Baseline::parse(&text) {
                    Ok(base) => apply_baseline(&mut report, &base),
                    Err(e) => {
                        eprintln!("error: bad baseline {}: {e}", path.display());
                        return 2;
                    }
                }
            }
            if opts.json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            report.exit_code(&opts)
        }
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", root.display());
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_classification() {
        let c = context_for("crates/noc/src/sim.rs");
        assert_eq!(c.crate_name, "noc");
        assert!(c.sim_critical && !c.is_test_file && !c.is_bin && !c.is_crate_root);

        let c = context_for("crates/compression/src/lib.rs");
        assert!(c.sim_critical && c.is_crate_root);

        let c = context_for("crates/noc/tests/integration.rs");
        assert!(c.sim_critical && c.is_test_file);

        let c = context_for("crates/exec/src/pool.rs");
        assert!(!c.sim_critical);

        let c = context_for("crates/harness/src/bin/fig9.rs");
        assert!(c.is_bin);

        let c = context_for("src/lib.rs");
        assert_eq!(c.crate_name, "approx-noc");
        assert!(c.is_crate_root && !c.sim_critical);

        let c = context_for("src/bin/anoc.rs");
        assert!(c.is_bin);

        let c = context_for("examples/latency_sweep.rs");
        assert!(c.is_test_file);
    }

    #[test]
    fn report_exit_codes() {
        let clean = Report::default();
        assert_eq!(clean.exit_code(&Options::default()), 0);
        assert_eq!(
            clean.exit_code(&Options {
                deny: true,
                ..Options::default()
            }),
            0
        );
        let mut warned = Report::default();
        warned.findings.push(Finding {
            rule_id: "C001",
            severity: Severity::Warning,
            path: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(warned.exit_code(&Options::default()), 0);
        assert_eq!(
            warned.exit_code(&Options {
                deny: true,
                ..Options::default()
            }),
            1
        );
        let mut errored = Report::default();
        errored.findings.push(Finding {
            rule_id: "D002",
            severity: Severity::Error,
            path: "x.rs".into(),
            line: 1,
            message: "m".into(),
        });
        assert_eq!(errored.exit_code(&Options::default()), 1);
    }

    #[test]
    fn json_schema_is_stable() {
        let mut r = Report {
            files_scanned: 2,
            suppressed: 1,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule_id: "D002",
            severity: Severity::Error,
            path: "crates/noc/src/sim.rs".into(),
            line: 69,
            message: "a \"quoted\" message".into(),
        });
        let json = r.render_json();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"warnings\": 0"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("\"grandfathered\": 0"));
        assert!(json.contains("\"suppressed_budget\": null"));
        assert!(json.contains(
            "{\"rule\": \"D002\", \"severity\": \"error\", \
             \"path\": \"crates/noc/src/sim.rs\", \"line\": 69, \
             \"message\": \"a \\\"quoted\\\" message\"}"
        ));
        // Key order is fixed: version before violations, rule before path.
        let v = json.find("\"version\"").unwrap();
        let f = json.find("\"files_scanned\"").unwrap();
        let vio = json.find("\"violations\"").unwrap();
        assert!(v < f && f < vio);
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let json = Report::default().render_json();
        assert!(json.contains("\"violations\": []"));
    }

    #[test]
    fn lint_source_counts_suppressions() {
        let ctx = context_for("crates/noc/src/x.rs");
        let (v, s) = lint_source(
            &ctx,
            "use std::collections::HashMap; // anoc-lint: allow(D002): scratch only\n",
        );
        assert!(v.is_empty());
        assert_eq!(s, 1);
    }

    fn finding(rule_id: &'static str, path: &str, sev: Severity) -> Finding {
        Finding {
            rule_id,
            severity: sev,
            path: path.into(),
            line: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut r = Report {
            suppressed: 4,
            ..Report::default()
        };
        r.findings.push(finding("C001", "a.rs", Severity::Warning));
        r.findings.push(finding("C001", "a.rs", Severity::Warning));
        r.findings.push(finding("D002", "b.rs", Severity::Error));
        let base = Baseline::from_report(&r);
        assert_eq!(base.suppressed, 4);
        assert_eq!(base.entries[&("C001".into(), "a.rs".into())], 2);
        let parsed = Baseline::parse(&base.render_json()).unwrap();
        assert_eq!(parsed, base);
        // An empty baseline round-trips too.
        let empty = Baseline::from_report(&Report::default());
        assert_eq!(Baseline::parse(&empty.render_json()).unwrap(), empty);
    }

    #[test]
    fn baseline_parse_rejects_garbage() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\n  \"suppressed\": what\n}").is_err());
        assert!(Baseline::parse(
            "{\n  \"suppressed\": 1,\n  \"entries\": [\n    {\"rule\": \"C001\"}\n  ]\n}"
        )
        .is_err());
    }

    #[test]
    fn baseline_grandfathers_old_findings_and_keeps_new() {
        let mut r = Report {
            suppressed: 2,
            ..Report::default()
        };
        r.findings.push(finding("C001", "a.rs", Severity::Warning));
        r.findings.push(finding("C001", "a.rs", Severity::Warning));
        r.findings.push(finding("D002", "new.rs", Severity::Error));
        let mut base = Baseline {
            suppressed: 2,
            ..Baseline::default()
        };
        base.entries.insert(("C001".into(), "a.rs".into()), 2);
        apply_baseline(&mut r, &base);
        assert_eq!(r.grandfathered, 2);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].path, "new.rs");
        // The new finding still fails the run.
        assert_eq!(r.exit_code(&Options::default()), 1);
    }

    #[test]
    fn baseline_count_overflow_is_a_new_finding() {
        // Three findings against a budget of two: one stays visible.
        let mut r = Report::default();
        for _ in 0..3 {
            r.findings.push(finding("C001", "a.rs", Severity::Warning));
        }
        let mut base = Baseline::default();
        base.entries.insert(("C001".into(), "a.rs".into()), 2);
        apply_baseline(&mut r, &base);
        assert_eq!((r.grandfathered, r.findings.len()), (2, 1));
    }

    #[test]
    fn suppression_growth_fails_even_when_clean() {
        let mut r = Report {
            suppressed: 3,
            ..Report::default()
        };
        let base = Baseline {
            suppressed: 2,
            ..Baseline::default()
        };
        apply_baseline(&mut r, &base);
        assert!(r.findings.is_empty());
        assert!(r.suppression_growth());
        assert_eq!(r.exit_code(&Options::default()), 1);
        assert!(r.render_human().contains("exceeds the baseline budget"));
        // At or under budget is fine.
        let mut ok = Report {
            suppressed: 2,
            ..Report::default()
        };
        apply_baseline(&mut ok, &base);
        assert_eq!(ok.exit_code(&Options::default()), 0);
    }
}
