//! A brace-matched item tree over the token stream — the scope layer that
//! turns the flat lexer into a (cheap) structural analysis.
//!
//! The tree is built with a single pushdown pass: item keywords (`fn`,
//! `mod`, `impl`, `trait`, `struct`, `enum`, `union`) arm a *pending item*
//! that the next `{` opens as a named scope; any other `{` opens an
//! anonymous block. Attributes (`#[...]`) are collected ahead of the item
//! they decorate, so `#[cfg(test)]` / `#[test]` propagate down the tree and
//! per-scope queries replace the old line-range test-region scan.
//!
//! While walking each `fn` body the builder also records *call sites* —
//! identifiers followed by `(` (or `!` for macros) — which gives rules a
//! name-level call graph: good enough for reachability checks like D005
//! (phase-A discipline) without a resolver. The approximation is
//! deliberately conservative: same-named functions in different impls are
//! merged, so reachability over-approximates and a rule built on it can
//! only over-report, never silently under-report.
//!
//! Brace balance is part of the contract: a `}` with no open scope, or an
//! EOF with scopes still open, is recorded as a balance error and surfaced
//! by the rule layer as L000 — random token soup either round-trips
//! balanced or is reported, never mis-attributed.

use crate::lexer::{Lexed, TokKind, Token};

/// What kind of scope a `{ ... }` region is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// `mod name { ... }`
    Module,
    /// `fn name(...) { ... }`
    Fn,
    /// `impl Type { ... }` / `impl Trait for Type { ... }` — `name` is the
    /// last path segment of the implemented-for type.
    Impl,
    /// `trait Name { ... }`
    Trait,
    /// `struct`/`enum`/`union` body.
    Type,
    /// An attributed item that ended with `;` instead of a body
    /// (`#[cfg(test)] use helpers::*;`) — zero-width, kept so attribute
    /// queries still cover it.
    Stmt,
    /// Any other `{ ... }` (fn bodies' inner blocks, match arms, struct
    /// literals, const generic braces, ...).
    Block,
}

/// One call site inside a function body: an identifier directly followed by
/// `(`, or a macro invocation `name!(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    pub name: String,
    pub line: u32,
}

/// One scope in the tree. `scopes[0]` is always the file root.
#[derive(Debug, Clone)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Item name (`fn`/`mod`/`trait`/type name, impl target); empty for
    /// blocks and the root.
    pub name: String,
    /// Index of the parent scope (the root is its own parent).
    pub parent: usize,
    /// Line of the item keyword (or first attribute for `Stmt`).
    pub header_line: u32,
    /// Line of the opening `{`.
    pub open_line: u32,
    /// Line of the closing `}` (last line of the file if unclosed).
    pub close_line: u32,
    /// Normalized outer attributes (`"cfg(test)"`, `"test"`, `"derive(..)"`).
    pub attrs: Vec<String>,
    /// Under `#[cfg(test)]` / `#[test]`, directly or via an ancestor.
    pub is_test: bool,
    /// Phase annotation (`// anoc-lint: phase(A)`) attached to this fn.
    pub phase: Option<String>,
    /// Call sites recorded in this scope's immediate body (inner blocks
    /// attach their calls to the nearest enclosing `fn`).
    pub calls: Vec<Call>,
}

impl Scope {
    /// Whether `line` falls inside this scope (header through closing brace).
    pub fn contains(&self, line: u32) -> bool {
        self.kind == ScopeKind::Root || (self.header_line <= line && line <= self.close_line)
    }
}

/// A brace-balance defect — surfaced by the rule layer as L000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceError {
    pub line: u32,
    pub detail: &'static str,
}

/// The scope tree of one file plus everything the builder could not attach.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub scopes: Vec<Scope>,
    pub balance_errors: Vec<BalanceError>,
    /// `phase(...)` annotation lines with no following `fn` to attach to.
    pub dangling_phase: Vec<u32>,
}

impl ItemTree {
    /// Whether `line` sits inside `#[cfg(test)]` / `#[test]` code.
    pub fn in_test(&self, line: u32) -> bool {
        self.scopes
            .iter()
            .skip(1)
            .any(|s| s.is_test && s.contains(line))
    }

    /// The innermost `impl` target name enclosing `line`, if any.
    pub fn enclosing_impl_name(&self, line: u32) -> Option<&str> {
        self.scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Impl && s.contains(line))
            .max_by_key(|s| s.header_line)
            .map(|s| s.name.as_str())
    }

    /// Every `(reachable fn scope, phase-root fn scope)` pair for `phase`,
    /// via name-level BFS over recorded call sites. The root itself is
    /// included (a root may call a denied mutator directly).
    pub fn phase_reachable(&self, phase: &str) -> Vec<(usize, usize)> {
        use std::collections::BTreeMap;
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.scopes.iter().enumerate() {
            if s.kind == ScopeKind::Fn && !s.name.is_empty() {
                by_name.entry(s.name.as_str()).or_default().push(i);
            }
        }
        let mut out = Vec::new();
        for (root, _) in self
            .scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == ScopeKind::Fn && s.phase.as_deref() == Some(phase))
        {
            let mut visited = vec![false; self.scopes.len()];
            let mut work = vec![root];
            visited[root] = true;
            while let Some(cur) = work.pop() {
                out.push((cur, root));
                for call in &self.scopes[cur].calls {
                    for &target in by_name.get(call.name.as_str()).into_iter().flatten() {
                        if !visited[target] {
                            visited[target] = true;
                            work.push(target);
                        }
                    }
                }
            }
        }
        out
    }
}

/// If `tokens[i]` opens an attribute (`#[...]` or `#![...]`), returns its
/// bracketed tokens and the index just past the closing `]`.
pub(crate) fn attribute_at(tokens: &[Token], i: usize) -> Option<(&[Token], usize)> {
    let mut j = i + 1;
    if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
        j += 1;
    }
    if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((&tokens[open + 1..j], j + 1));
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// `#[test]` or `#[cfg(test)]` — but not `#[cfg(not(test))]`.
fn is_test_attr(attr: &str) -> bool {
    attr == "test" || attr == "cfg(test)"
}

/// Keywords that can directly precede `(` without being a call, plus
/// item keywords whose *name* token must not read as a call.
const NON_CALL_IDENTS: [&str; 18] = [
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move", "ref", "mut",
    "box", "yield", "dyn", "where", "break",
];

/// Item keywords: when one directly precedes an identifier, that identifier
/// is a definition name, not a call (`fn helper(`, `struct Pair(`).
const ITEM_KEYWORDS: [&str; 7] = ["fn", "mod", "impl", "trait", "struct", "enum", "union"];

/// Builds the scope tree for one lexed file.
pub fn build(lexed: &Lexed) -> ItemTree {
    Builder {
        tokens: &lexed.tokens,
        tree: ItemTree::default(),
        stack: Vec::new(),
        pending: None,
        pending_attrs: Vec::new(),
    }
    .run(lexed)
}

struct Pending {
    kind: ScopeKind,
    name: String,
    header_line: u32,
}

struct Builder<'a> {
    tokens: &'a [Token],
    tree: ItemTree,
    stack: Vec<usize>,
    pending: Option<Pending>,
    pending_attrs: Vec<(String, u32)>,
}

impl Builder<'_> {
    fn run(mut self, lexed: &Lexed) -> ItemTree {
        let last_line = self.tokens.last().map(|t| t.line).unwrap_or(1);
        self.tree.scopes.push(Scope {
            kind: ScopeKind::Root,
            name: String::new(),
            parent: 0,
            header_line: 1,
            open_line: 1,
            close_line: last_line,
            attrs: Vec::new(),
            is_test: false,
            phase: None,
            calls: Vec::new(),
        });
        self.stack.push(0);
        // Annotations are consumed in line order by the fns they precede.
        let mut anns: Vec<(u32, &str, bool)> = lexed
            .annotations
            .iter()
            .map(|a| (a.line, a.phase.as_str(), false))
            .collect();

        let mut i = 0;
        while i < self.tokens.len() {
            let t = &self.tokens[i];
            match t.kind {
                TokKind::Punct if t.text == "#" => {
                    if let Some((attr, after)) = attribute_at(self.tokens, i) {
                        // Inner attributes (`#![...]`) configure the
                        // enclosing scope; they carry no cfg(test) items
                        // here, so they are skipped rather than attached.
                        let inner = self.tokens.get(i + 1).map(|n| n.text.as_str()) == Some("!");
                        if !inner {
                            self.pending_attrs.push((attr_text(attr), t.line));
                        }
                        i = after;
                        continue;
                    }
                }
                TokKind::Punct if t.text == "{" => self.open_scope(t.line, &mut anns),
                TokKind::Punct if t.text == "}" => {
                    if self.stack.len() > 1 {
                        let s = self.stack.pop().unwrap_or(0);
                        self.tree.scopes[s].close_line = t.line;
                    } else {
                        self.tree.balance_errors.push(BalanceError {
                            line: t.line,
                            detail: "`}` with no matching `{`",
                        });
                    }
                    self.pending = None;
                    self.pending_attrs.clear();
                }
                TokKind::Punct if t.text == ";" => self.close_stmt(t.line),
                TokKind::Ident if ITEM_KEYWORDS.contains(&t.text.as_str()) => {
                    self.arm_pending(i, t);
                }
                TokKind::Ident => self.maybe_record_call(i, t),
                _ => {}
            }
            i += 1;
        }

        // Unclosed scopes at EOF: close them at the last line and report.
        while self.stack.len() > 1 {
            let s = self.stack.pop().unwrap_or(0);
            self.tree.scopes[s].close_line = last_line;
            self.tree.balance_errors.push(BalanceError {
                line: self.tree.scopes[s].open_line,
                detail: "`{` still open at end of file",
            });
        }
        self.tree.dangling_phase = anns
            .iter()
            .filter(|(_, _, consumed)| !consumed)
            .map(|&(line, _, _)| line)
            .collect();
        self.tree
    }

    /// An item keyword arms a pending scope that the next `{` will open.
    fn arm_pending(&mut self, i: usize, t: &Token) {
        let kind = match t.text.as_str() {
            "fn" => ScopeKind::Fn,
            "mod" => ScopeKind::Module,
            "impl" => ScopeKind::Impl,
            "trait" => ScopeKind::Trait,
            _ => ScopeKind::Type,
        };
        let name = if kind == ScopeKind::Impl {
            self.impl_target_name(i)
        } else {
            match self.tokens.get(i + 1) {
                Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                // `fn(` function-pointer type, `impl Trait` in arg position
                // with no body, etc. — not an item header.
                _ => return,
            }
        };
        self.pending = Some(Pending {
            kind,
            name,
            header_line: t.line,
        });
    }

    /// The last path segment of the type an `impl` header targets: the final
    /// identifier at angle-bracket depth 0 before `{` / `;` / `where`
    /// (`impl fmt::Display for stats::Histogram {` → `Histogram`).
    fn impl_target_name(&self, i: usize) -> String {
        let mut angle = 0i32;
        let mut name = String::new();
        for t in &self.tokens[i + 1..] {
            match t.kind {
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" => angle -= 1,
                TokKind::Punct if t.text == "{" || t.text == ";" => break,
                TokKind::Ident if t.text == "where" => break,
                TokKind::Ident if angle == 0 && t.text != "for" && t.text != "const" => {
                    name = t.text.clone();
                }
                _ => {}
            }
        }
        name
    }

    fn open_scope(&mut self, line: u32, anns: &mut [(u32, &str, bool)]) {
        let (kind, name, header_line) = match self.pending.take() {
            Some(p) => (p.kind, p.name, p.header_line),
            None => (ScopeKind::Block, String::new(), line),
        };
        let attrs: Vec<String> = if kind == ScopeKind::Block {
            // Attributes never decorate a bare block; drop strays so a
            // statement attr cannot leak onto the next `{`.
            self.pending_attrs.clear();
            Vec::new()
        } else {
            self.pending_attrs.drain(..).map(|(a, _)| a).collect()
        };
        let parent = self.stack.last().copied().unwrap_or(0);
        let is_test = self.tree.scopes[parent].is_test || attrs.iter().any(|a| is_test_attr(a));
        let mut phase = None;
        if kind == ScopeKind::Fn {
            for (ann_line, ann_phase, consumed) in anns.iter_mut() {
                if !*consumed && *ann_line <= header_line {
                    *consumed = true;
                    phase = Some(ann_phase.to_string());
                }
            }
        }
        let idx = self.tree.scopes.len();
        self.tree.scopes.push(Scope {
            kind,
            name,
            parent,
            header_line,
            open_line: line,
            close_line: line,
            attrs,
            is_test,
            phase,
            calls: Vec::new(),
        });
        self.stack.push(idx);
    }

    /// An attributed item that ended in `;` (no body): record a zero-width
    /// `Stmt` scope so `#[cfg(test)] use helpers::*;` still reads as test
    /// code, matching the old line-range scan.
    fn close_stmt(&mut self, line: u32) {
        let pending = self.pending.take();
        if self.pending_attrs.is_empty() {
            return; // plain statement, or `fn f();` in a trait — nothing to track
        }
        let header_line = self.pending_attrs.first().map(|&(_, l)| l).unwrap_or(line);
        let attrs: Vec<String> = self.pending_attrs.drain(..).map(|(a, _)| a).collect();
        let parent = self.stack.last().copied().unwrap_or(0);
        let is_test = self.tree.scopes[parent].is_test || attrs.iter().any(|a| is_test_attr(a));
        self.tree.scopes.push(Scope {
            kind: ScopeKind::Stmt,
            name: pending.map(|p| p.name).unwrap_or_default(),
            parent,
            header_line,
            open_line: line,
            close_line: line,
            attrs,
            is_test,
            phase: None,
            calls: Vec::new(),
        });
    }

    /// `name(` or `name!(` → a call site, attached to the nearest enclosing
    /// `fn` (calls at module level — const initializers, macro invocations —
    /// have no caller and are dropped).
    fn maybe_record_call(&mut self, i: usize, t: &Token) {
        if NON_CALL_IDENTS.contains(&t.text.as_str()) {
            return;
        }
        if let Some(prev) = i.checked_sub(1).and_then(|p| self.tokens.get(p)) {
            if prev.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&prev.text.as_str()) {
                return; // definition name, not a call
            }
        }
        let next = self.tokens.get(i + 1).map(|n| n.text.as_str());
        let is_call = match next {
            Some("(") => true,
            Some("!") => matches!(
                self.tokens.get(i + 2).map(|n| n.text.as_str()),
                Some("(") | Some("[") | Some("{")
            ),
            _ => false,
        };
        if !is_call {
            return;
        }
        let Some(&fn_scope) = self
            .stack
            .iter()
            .rev()
            .find(|&&s| self.tree.scopes[s].kind == ScopeKind::Fn)
        else {
            return;
        };
        self.tree.scopes[fn_scope].calls.push(Call {
            name: t.text.clone(),
            line: t.line,
        });
    }
}

fn attr_text(attr: &[Token]) -> String {
    let mut out = String::new();
    for t in attr {
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        build(&lex(src))
    }

    fn scope<'t>(t: &'t ItemTree, name: &str) -> &'t Scope {
        t.scopes
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no scope named {name}"))
    }

    #[test]
    fn items_nest_and_span_lines() {
        let t = tree("mod outer {\n    fn inner() {\n        let x = 1;\n    }\n}\n");
        let outer = scope(&t, "outer");
        let inner = scope(&t, "inner");
        assert_eq!(outer.kind, ScopeKind::Module);
        assert_eq!(inner.kind, ScopeKind::Fn);
        assert_eq!((outer.header_line, outer.close_line), (1, 5));
        assert_eq!((inner.header_line, inner.close_line), (2, 4));
        assert_eq!(
            t.scopes[t.scopes.iter().position(|s| s.name == "inner").unwrap()].parent,
            t.scopes.iter().position(|s| s.name == "outer").unwrap()
        );
        assert!(t.balance_errors.is_empty());
    }

    #[test]
    fn cfg_test_propagates_to_children() {
        let t = tree("#[cfg(test)]\nmod tests {\n    fn helper() { x() }\n    #[test]\n    fn case() {}\n}\nfn lib() {}\n");
        assert!(scope(&t, "tests").is_test);
        assert!(scope(&t, "helper").is_test);
        assert!(scope(&t, "case").is_test);
        assert!(!scope(&t, "lib").is_test);
        assert!(t.in_test(3));
        assert!(!t.in_test(7));
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let t = tree("#[cfg(not(test))]\nfn f() {}\n");
        assert!(!scope(&t, "f").is_test);
    }

    #[test]
    fn attributed_semicolon_item_gets_a_stmt_scope() {
        let t = tree("#[cfg(test)]\nuse helpers::*;\nfn f() {}\n");
        assert!(t.in_test(2));
        assert!(!t.in_test(3));
    }

    #[test]
    fn impl_target_names() {
        let t = tree(
            "impl Histogram { fn a(&self) {} }\n\
             impl fmt::Display for stats::NetStats { fn fmt(&self) {} }\n\
             impl<T: Clone> Wrapper<T> where T: Send { fn c(&self) {} }\n",
        );
        let impls: Vec<&str> = t
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Impl)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(impls, vec!["Histogram", "NetStats", "Wrapper"]);
        assert_eq!(t.enclosing_impl_name(1), Some("Histogram"));
        assert_eq!(t.enclosing_impl_name(2), Some("NetStats"));
    }

    #[test]
    fn calls_attach_to_the_enclosing_fn_through_blocks() {
        let t = tree("fn a() {\n    if x {\n        helper(1);\n        mac!(2);\n    }\n}\n");
        let calls: Vec<&str> = scope(&t, "a")
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert!(calls.contains(&"helper"));
        assert!(calls.contains(&"mac"));
    }

    #[test]
    fn definitions_and_keywords_are_not_calls() {
        let t = tree("fn a() { if cond(x) { } struct Pair(u32); for i in it(y) {} }\n");
        let calls: Vec<&str> = scope(&t, "a")
            .calls
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert!(calls.contains(&"cond"));
        assert!(calls.contains(&"it"));
        assert!(!calls.contains(&"Pair"));
        assert!(!calls.contains(&"if"));
        assert!(!calls.contains(&"for"));
    }

    #[test]
    fn phase_annotation_attaches_to_next_fn() {
        let t = tree(
            "// anoc-lint: phase(A)\nfn phase_a() { helper() }\nfn helper() { mutate() }\nfn mutate() {}\nfn unrelated() { mutate() }\n",
        );
        assert_eq!(scope(&t, "phase_a").phase.as_deref(), Some("A"));
        assert_eq!(scope(&t, "helper").phase, None);
        assert!(t.dangling_phase.is_empty());
        let reach: Vec<&str> = t
            .phase_reachable("A")
            .iter()
            .map(|&(s, _)| t.scopes[s].name.as_str())
            .collect();
        assert!(reach.contains(&"phase_a"));
        assert!(reach.contains(&"helper"));
        assert!(reach.contains(&"mutate"));
        assert!(!reach.contains(&"unrelated"));
    }

    #[test]
    fn dangling_phase_annotation_is_reported() {
        let t = tree("fn f() {}\n// anoc-lint: phase(A)\nlet x = 1;\n");
        assert_eq!(t.dangling_phase, vec![2]);
    }

    #[test]
    fn unbalanced_braces_are_balance_errors() {
        assert_eq!(tree("fn f() { }").balance_errors.len(), 0);
        let open = tree("fn f() { if x {\n");
        assert_eq!(open.balance_errors.len(), 2);
        let close = tree("fn f() { } }\n");
        assert_eq!(close.balance_errors.len(), 1);
        assert_eq!(close.balance_errors[0].detail, "`}` with no matching `{`");
    }

    #[test]
    fn braces_in_strings_and_chars_do_not_count() {
        let t = tree("fn f() { let a = \"{{{\"; let b = '{'; let c = r#\"}\"#; }\n");
        assert!(t.balance_errors.is_empty());
    }

    #[test]
    fn match_and_struct_literals_are_blocks() {
        let t = tree("fn f() { match x { A => {} } let p = Point { x: 1 }; }\n");
        assert!(t.balance_errors.is_empty());
        assert_eq!(
            t.scopes.iter().filter(|s| s.kind == ScopeKind::Fn).count(),
            1
        );
    }
}
