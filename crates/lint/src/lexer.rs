//! A minimal Rust lexer: just enough token structure for line-level lint
//! rules, with zero dependencies so the workspace keeps building offline.
//!
//! The lexer understands the parts of Rust surface syntax that would
//! otherwise produce false positives in a grep-style scan:
//!
//! * line comments (`//`, `///`, `//!`) — skipped as trivia, but scanned for
//!   `anoc-lint: allow(...)` suppression directives;
//! * block comments, including nesting (`/* /* */ */`);
//! * string literals with escapes, byte strings, and raw strings with any
//!   number of `#` guards (`r#"…"#`, `br##"…"##`);
//! * char literals vs lifetimes (`'a'` vs `<'a>`);
//! * numeric literals, distinguishing integer from float (fraction,
//!   exponent, or `f32`/`f64` suffix);
//! * multi-char operators, so `==` is one token and `<=` never reads as
//!   `<` + `=`.
//!
//! Everything else (identifiers, punctuation) comes out as plain tokens
//! tagged with a 1-based line number.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`0.0`, `1e9`, `2f64`).
    Float,
    /// Operator or punctuation (`==`, `::`, `.`, `#`, `{`, …).
    Punct,
    /// String, byte-string or raw-string literal (contents not tokenized).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a` in `<'a>`); also `'static`.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// An inline suppression directive:
/// `// anoc-lint: allow(D002): iteration order never observed`.
///
/// It silences the listed rules on its own line and on the following line,
/// so it can trail the offending expression or sit just above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// A malformed `anoc-lint:` comment — reported as its own violation (L000)
/// so a typo'd suppression never silently fails open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedDirective {
    pub line: u32,
    pub detail: String,
}

/// A scope annotation: `// anoc-lint: phase(A)`.
///
/// It marks the next `fn` item (same line or below) as a root of that
/// execution phase; D005 walks the call graph from every phase root. An
/// annotation with no following `fn` in the file is reported as L000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseAnnotation {
    pub line: u32,
    pub phase: String,
}

/// A sanctioned RNG construction site:
/// `// anoc-lint: rng-site: <why this seeding is deterministic>`.
///
/// D004 requires every seeded-Pcg32 construction in sim-critical library
/// code to sit at one of these (same line or the line below); the reason is
/// mandatory so each site documents its determinism argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngSite {
    pub line: u32,
    pub reason: String,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
    pub malformed: Vec<MalformedDirective>,
    pub annotations: Vec<PhaseAnnotation>,
    pub rng_sites: Vec<RngSite>,
}

impl Lexed {
    /// Whether `rule` is suppressed at `line` (directive on the same line or
    /// the line directly above).
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }

    /// Whether `line` is covered by an `rng-site` directive (same line or
    /// the line directly above).
    pub fn is_rng_site(&self, line: u32) -> bool {
        self.rng_sites
            .iter()
            .any(|s| s.line == line || s.line + 1 == line)
    }
}

/// Two-character operators joined into one token. Longest-match on the first
/// two chars is enough for lint purposes (`<<=` lexes as `<<` + `=`, which no
/// rule cares about).
const TWO_CHAR_OPS: [&str; 19] = [
    "==", "!=", "<=", ">=", "::", "->", "=>", "&&", "||", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<",
];

/// Lexes Rust source. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string();
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if c == '_' || c.is_alphanumeric() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    /// Whether the cursor sits on `r"`, `r#`, `br"` or `br#`.
    fn raw_string_ahead(&self) -> bool {
        let (mut i, c) = (1, self.peek(0));
        if c == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        matches!(self.peek(i), Some('"') | Some('#'))
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.directive(&text, line);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn raw_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier, not a raw string: emit as ident.
            let mut text = String::from("r#");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, text, line);
            return;
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..guards {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..guards {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match (self.peek(0), self.peek(1)) {
            // `'\n'`, `'\u{7f}'` — escaped char literal. The escaped char
            // itself is consumed first so `'\''` does not close early.
            (Some('\\'), _) => {
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            // `'a'` — plain char literal.
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokKind::Char, String::new(), line);
            }
            // `'a`, `'static` — lifetime.
            (Some(c), _) if c == '_' || c.is_alphanumeric() => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
            // `'('` and friends — single-char literal of punctuation.
            (Some(_), _) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
            (None, _) => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_ascii_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fraction: a dot followed by a digit (so `1.max(2)` and `1..2` stay
        // integers), or a trailing dot not starting a path/range (`1.`).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_ascii_digit() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some(d) if d == '.' || d == '_' || d.is_alphabetic() => {}
                _ => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(d) if d.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap());
                if sign {
                    text.push(self.bump().unwrap());
                }
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Suffix (`u32`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let a = self.bump().unwrap_or(' ');
        if let Some(b) = self.peek(0) {
            let two: String = [a, b].iter().collect();
            if TWO_CHAR_OPS.contains(&two.as_str()) {
                self.bump();
                self.push(TokKind::Punct, two, line);
                return;
            }
        }
        self.push(TokKind::Punct, a.to_string(), line);
    }

    /// Parses an `anoc-lint:` directive out of a line comment. Three verbs:
    ///
    /// * `allow(R1[, R2…]): reason` — suppression;
    /// * `phase(A)` — scope annotation for the next `fn` item (D005);
    /// * `rng-site: reason` — sanctioned RNG construction site (D004).
    ///
    /// Only plain `//` comments whose body *starts with* `anoc-lint:` count:
    /// doc comments (`///`, `//!`) may mention the syntax in prose without
    /// being parsed as directives.
    fn directive(&mut self, comment: &str, line: u32) {
        let body = comment.strip_prefix("//").unwrap_or(comment);
        if body.starts_with('/') || body.starts_with('!') {
            return; // doc comment
        }
        let Some(rest) = body.trim_start().strip_prefix("anoc-lint:") else {
            return;
        };
        let rest = rest.trim_start();
        let malformed = |detail: &str| MalformedDirective {
            line,
            detail: detail.to_string(),
        };
        if let Some(rest) = rest.strip_prefix("phase(") {
            let Some(close) = rest.find(')') else {
                self.out.malformed.push(malformed("unclosed `phase(`"));
                return;
            };
            let phase = rest[..close].trim();
            let tail = rest[close + 1..].trim();
            if phase.is_empty() || !phase.chars().all(|c| c == '_' || c.is_alphanumeric()) {
                self.out
                    .malformed
                    .push(malformed("phase name must be a plain identifier"));
                return;
            }
            if !tail.is_empty() {
                self.out
                    .malformed
                    .push(malformed("unexpected text after `phase(...)`"));
                return;
            }
            self.out.annotations.push(PhaseAnnotation {
                line,
                phase: phase.to_string(),
            });
            return;
        }
        if let Some(rest) = rest.strip_prefix("rng-site") {
            let reason = rest.trim_start().strip_prefix(':').map(str::trim);
            match reason {
                Some(r) if !r.is_empty() => {
                    self.out.rng_sites.push(RngSite {
                        line,
                        reason: r.to_string(),
                    });
                }
                _ => self.out.malformed.push(malformed(
                    "rng-site needs a reason: `rng-site: <why this seeding is deterministic>`",
                )),
            }
            return;
        }
        let Some(rest) = rest.strip_prefix("allow(") else {
            self.out.malformed.push(malformed(
                "expected `allow(<RULE>[, <RULE>…]): <reason>`, `phase(<P>)` or `rng-site: <reason>`",
            ));
            return;
        };
        let Some(close) = rest.find(')') else {
            self.out.malformed.push(malformed("unclosed `allow(`"));
            return;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            self.out
                .malformed
                .push(malformed("empty rule list in `allow()`"));
            return;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            self.out.malformed.push(malformed(
                "suppression needs a reason: `allow(RULE): <why this is safe>`",
            ));
            return;
        }
        self.out.suppressions.push(Suppression {
            line,
            rules,
            reason: reason.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "HashMap::unwrap() // not code"; s.len()"#);
        assert!(idents(r#"let s = "HashMap"; s"#)
            .iter()
            .all(|i| i != "HashMap"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let l = lex(r#"let s = "a \" HashMap \\"; t"#);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.tokens.last().map(|t| t.text.as_str()), Some("t"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let l = lex(r###"let s = r#"contains "quotes" and HashMap"#; done"###);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.tokens.last().map(|t| t.text.as_str()), Some("done"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex(r##"let a = b"HashMap"; let b = br#"HashSet"#; end"##);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "HashSet"));
        assert_eq!(l.tokens.last().map(|t| t.text.as_str()), Some("end"));
    }

    #[test]
    fn comments_are_trivia() {
        let l = lex("// HashMap here\n/* unwrap() */ /* nested /* HashSet */ */ x");
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["x"]
        );
    }

    #[test]
    fn chars_vs_lifetimes() {
        let l = lex(r"fn f<'a>(x: &'a str) -> char { 'x' } let q = '\''; let n = '\n';");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            3
        );
    }

    #[test]
    fn nested_generics_lex_cleanly() {
        let l = lex("traces: BTreeMap<PacketId, Vec<(u64, TraceEvent)>>,");
        let ids = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(
            ids,
            vec!["traces", "BTreeMap", "PacketId", "Vec", "u64", "TraceEvent"]
        );
    }

    #[test]
    fn float_vs_int_literals() {
        let kinds = |src: &str| {
            lex(src)
                .tokens
                .into_iter()
                .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
                .map(|t| (t.kind, t.text))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            kinds("0.0 1e9 2.5e-3 3f64 0.5f32"),
            vec![
                (TokKind::Float, "0.0".into()),
                (TokKind::Float, "1e9".into()),
                (TokKind::Float, "2.5e-3".into()),
                (TokKind::Float, "3f64".into()),
                (TokKind::Float, "0.5f32".into()),
            ]
        );
        assert_eq!(
            kinds("42 0xFF 1_000u64 7usize"),
            vec![
                (TokKind::Int, "42".into()),
                (TokKind::Int, "0xFF".into()),
                (TokKind::Int, "1_000u64".into()),
                (TokKind::Int, "7usize".into()),
            ]
        );
        // Method calls and ranges on integers stay integers.
        assert_eq!(
            kinds("1..2").iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![TokKind::Int, TokKind::Int]
        );
        assert_eq!(kinds("3.max(4)")[0].0, TokKind::Int);
        // Tuple/field access does not merge into a float.
        assert_eq!(kinds("x.0")[0], (TokKind::Int, "0".into()));
    }

    #[test]
    fn two_char_operators_join() {
        let puncts: Vec<String> = lex("a == b != c <= d >= e :: f")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">=", "::"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let l = lex("a\nb\n\nc /* multi\nline */ d");
        let at = |name: &str| l.tokens.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(at("a"), 1);
        assert_eq!(at("b"), 2);
        assert_eq!(at("c"), 4);
        assert_eq!(at("d"), 5);
    }

    #[test]
    fn suppression_directive_parses() {
        let l = lex("let x = 1; // anoc-lint: allow(D002): bounded test helper\n");
        assert_eq!(l.suppressions.len(), 1);
        let s = &l.suppressions[0];
        assert_eq!(s.line, 1);
        assert_eq!(s.rules, vec!["D002"]);
        assert_eq!(s.reason, "bounded test helper");
        assert!(l.is_suppressed("D002", 1));
        assert!(l.is_suppressed("D002", 2));
        assert!(!l.is_suppressed("D002", 3));
        assert!(!l.is_suppressed("C001", 1));
    }

    #[test]
    fn suppression_multiple_rules() {
        let l = lex("// anoc-lint: allow(C001, D003): invariant holds by construction\n");
        assert_eq!(l.suppressions[0].rules, vec!["C001", "D003"]);
    }

    #[test]
    fn malformed_suppressions_are_reported() {
        for bad in [
            "// anoc-lint: allow(D002)",          // missing reason
            "// anoc-lint: allow(D002):   ",      // empty reason
            "// anoc-lint: allow(): why",         // empty rule list
            "// anoc-lint: allow(D002: no close", // unclosed paren
            "// anoc-lint: deny(D002): nope",     // unknown verb
        ] {
            let l = lex(bad);
            assert_eq!(l.suppressions.len(), 0, "{bad}");
            assert_eq!(l.malformed.len(), 1, "{bad}");
        }
    }

    #[test]
    fn phase_annotation_parses() {
        let l = lex("// anoc-lint: phase(A)\nfn phase_a() {}\n");
        assert_eq!(
            l.annotations,
            vec![PhaseAnnotation {
                line: 1,
                phase: "A".into()
            }]
        );
        assert!(l.malformed.is_empty());
    }

    #[test]
    fn rng_site_parses_and_requires_reason() {
        let l = lex("// anoc-lint: rng-site: stateless per-site draw\nlet r = x;\n");
        assert_eq!(l.rng_sites.len(), 1);
        assert_eq!(l.rng_sites[0].reason, "stateless per-site draw");
        assert!(l.is_rng_site(1));
        assert!(l.is_rng_site(2));
        assert!(!l.is_rng_site(3));
    }

    #[test]
    fn malformed_phase_and_rng_site_are_reported() {
        for bad in [
            "// anoc-lint: phase(A",         // unclosed
            "// anoc-lint: phase()",         // empty
            "// anoc-lint: phase(A) extra",  // trailing text
            "// anoc-lint: phase(A+B)",      // not an identifier
            "// anoc-lint: rng-site",        // no reason
            "// anoc-lint: rng-site:   ",    // empty reason
            "// anoc-lint: rng-site reason", // missing colon
        ] {
            let l = lex(bad);
            assert!(l.annotations.is_empty(), "{bad}");
            assert!(l.rng_sites.is_empty(), "{bad}");
            assert_eq!(l.malformed.len(), 1, "{bad}");
        }
    }

    #[test]
    fn doc_comments_and_prose_are_not_directives() {
        for ignored in [
            "/// Suppress with `// anoc-lint: allow(D002)` and a reason.",
            "//! The `anoc-lint: allow(...)` syntax is described here.",
            "// see the anoc-lint: allow() docs", // body does not start with anoc-lint:
        ] {
            let l = lex(ignored);
            assert!(l.suppressions.is_empty(), "{ignored}");
            assert!(l.malformed.is_empty(), "{ignored}");
        }
    }
}
