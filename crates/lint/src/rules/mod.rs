//! The repo-specific rule set, organized into families.
//!
//! Every rule is grounded in a concrete hazard of this codebase: the result
//! cache and the golden-fingerprint test both assume that a
//! `(config, workload, seed)` triple reproduces identical bits, and the
//! sharded kernel (DESIGN.md §10) additionally assumes phase-A code reads
//! only last-edge state and cross-thread handoff uses correctly-ordered
//! atomics. Anything that can silently break those contracts is flagged at
//! the source level, before it ever reaches a simulation.
//!
//! | id   | severity | family      | checks |
//! |------|----------|-------------|--------|
//! | L000 | error    | hygiene     | malformed `anoc-lint:` directive, dangling `phase()`, unbalanced braces |
//! | D001 | error    | determinism | `Instant::now` / `SystemTime` / `thread_rng` in a sim-critical crate |
//! | D002 | error    | determinism | `HashMap` / `HashSet` in a sim-critical crate |
//! | D003 | warning  | determinism | float `==` / `!=` against a float literal (non-test code) |
//! | D004 | error    | determinism | RNG construction outside a `rng-site`-annotated seeded-Pcg32 site |
//! | D005 | error    | determinism | serial-edge mutator reachable from a `phase(A)` root |
//! | C001 | warning  | correctness | `.unwrap()` / `.expect()` / `panic!` in sim-critical library code |
//! | C002 | error    | correctness | crate root missing `#![forbid(unsafe_code)]` |
//! | C003 | warning  | correctness | silently-narrowing `as` cast in a stats-accumulation path |
//! | H001 | warning  | hygiene     | `println!` / `eprintln!` in sim-critical library code |
//! | X001 | error    | concurrency | `Ordering::Relaxed` in `anoc-exec` without an audit reason |
//!
//! Directives (plain `//` comments, same line or the line above):
//!
//! * `// anoc-lint: allow(RULE[, RULE…]): <reason>` — suppression;
//! * `// anoc-lint: phase(A)` — marks the next `fn` as a phase-A root (D005);
//! * `// anoc-lint: rng-site: <reason>` — sanctions an RNG construction (D004).
//!
//! Rule eligibility is scope- and location-aware: files under `tests/`,
//! `benches/` or `examples/` get the hygiene family only (H001/L000 — test
//! helpers may freely use clocks, hash maps and unwrap, but a malformed
//! directive must never silently fail open), C002 applies to every crate
//! root, X001/C003 extend to `anoc-exec`, and the remaining D/C/H rules run
//! on sim-critical crates with `#[cfg(test)]` scopes exempted per-tree.

mod concurrency;
mod correctness;
mod determinism;
mod hygiene;

use crate::lexer::Lexed;
use crate::syntax;

/// Finding severity. `Error` fails the run; `Warning` fails under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A rule's stable identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    pub id: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// All rules, in report order.
pub const RULES: [Rule; 11] = [
    Rule {
        id: "L000",
        severity: Severity::Error,
        summary: "malformed anoc-lint directive or unbalanced scope",
    },
    Rule {
        id: "D001",
        severity: Severity::Error,
        summary: "wall-clock or ambient randomness in a sim-critical crate",
    },
    Rule {
        id: "D002",
        severity: Severity::Error,
        summary: "hash-ordered collection in a sim-critical crate",
    },
    Rule {
        id: "D003",
        severity: Severity::Warning,
        summary: "exact float equality in stats/metrics code",
    },
    Rule {
        id: "D004",
        severity: Severity::Error,
        summary: "RNG constructed outside a sanctioned seeded site",
    },
    Rule {
        id: "D005",
        severity: Severity::Error,
        summary: "serial-edge mutator reachable from a parallel phase root",
    },
    Rule {
        id: "C001",
        severity: Severity::Warning,
        summary: "panicking call in sim-critical library code",
    },
    Rule {
        id: "C002",
        severity: Severity::Error,
        summary: "crate root missing #![forbid(unsafe_code)]",
    },
    Rule {
        id: "C003",
        severity: Severity::Warning,
        summary: "silently-narrowing cast in a stats-accumulation path",
    },
    Rule {
        id: "H001",
        severity: Severity::Warning,
        summary: "direct stdout/stderr printing in sim-critical library code",
    },
    Rule {
        id: "X001",
        severity: Severity::Error,
        summary: "unaudited Ordering::Relaxed in anoc-exec",
    },
];

pub fn rule(id: &str) -> &'static Rule {
    RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unknown rule id {id}"))
}

/// The crates whose behaviour feeds simulation statistics. Wall-clock,
/// hash-iteration order and panics are banned here; `exec`, `harness` and
/// the vendored `criterion`/`proptest` shims legitimately measure time and
/// print progress, so they are exempt from the D/H rules (C002 still
/// applies everywhere, and X001/C003 extend to `exec`).
pub const SIM_CRITICAL_CRATES: [&str; 5] = ["noc", "compression", "core", "traffic", "apps"];

/// Serial-edge mutators that phase-A code must never reach (DESIGN.md §10):
/// each one writes current-edge state (ejections, credits, traces, control
/// queues, fault draws) that only the serial cycle edge may touch.
pub const DEFAULT_PHASE_DENY: [&str; 11] = [
    "return_credit",
    "eject_flit",
    "complete_packet",
    "flip_payload_bit",
    "credit_copies",
    "record_trace",
    "enqueue_control_with",
    "check_bound",
    "schedule",
    "drain_delivered",
    "apply_notification",
];

/// Tunable rule parameters, settable from the CLI.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// D005 deny-list: function names phase-A-reachable code may not call.
    pub phase_deny: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            phase_deny: DEFAULT_PHASE_DENY.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Crate directory name under `crates/` (or the root package name).
    pub crate_name: String,
    /// Member of [`SIM_CRITICAL_CRATES`].
    pub sim_critical: bool,
    /// Under `tests/`, `benches/` or `examples/` — everything is test code.
    pub is_test_file: bool,
    /// Under `src/bin/` or a `main.rs` — CLI entry points may print/panic.
    pub is_bin: bool,
    /// A `src/lib.rs` — must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// One finding, pre-suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static Rule,
    pub line: u32,
    pub message: String,
}

/// Runs every applicable rule over one lexed file with the default config.
/// Suppressions are applied by the caller (so suppressed counts can be
/// reported).
pub fn check(ctx: &FileContext, lexed: &Lexed) -> Vec<Violation> {
    check_with(ctx, lexed, &RuleConfig::default())
}

/// [`check`] with explicit rule parameters.
pub fn check_with(ctx: &FileContext, lexed: &Lexed, cfg: &RuleConfig) -> Vec<Violation> {
    let tree = syntax::build(lexed);
    let mut out = Vec::new();
    hygiene::check_l000(lexed, &tree, &mut out);
    if ctx.is_test_file {
        // Test trees get the hygiene family only: helpers there may freely
        // use clocks, hash maps and unwrap, but directives are still parsed
        // (L000) and printing is still policed by H001's own gates.
        hygiene::check_h001(ctx, lexed, &tree, &mut out);
        out.sort_by_key(|v| (v.line, v.rule.id));
        return out;
    }
    if ctx.is_crate_root {
        correctness::check_c002(lexed, &mut out);
    }
    concurrency::check_x001(ctx, lexed, &mut out);
    correctness::check_c003(ctx, lexed, &tree, &mut out);
    if ctx.sim_critical {
        determinism::check(ctx, lexed, &tree, cfg, &mut out);
        correctness::check_c001(ctx, lexed, &tree, &mut out);
        hygiene::check_h001(ctx, lexed, &tree, &mut out);
    }
    out.sort_by_key(|v| (v.line, v.rule.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    pub(super) fn sim_ctx() -> FileContext {
        FileContext {
            path: "crates/noc/src/sim.rs".into(),
            crate_name: "noc".into(),
            sim_critical: true,
            ..FileContext::default()
        }
    }

    pub(super) fn check_src(ctx: &FileContext, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        check(ctx, &lexed)
            .into_iter()
            .filter(|v| !lexed.is_suppressed(v.rule.id, v.line))
            .collect()
    }

    pub(super) fn ids(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.id).collect()
    }

    #[test]
    fn violations_in_strings_and_comments_do_not_fire() {
        let ctx = sim_ctx();
        assert!(check_src(&ctx, "let s = \"HashMap::new() Instant::now\";").is_empty());
        assert!(check_src(&ctx, "// HashMap in prose\n/* x.unwrap() */").is_empty());
        assert!(check_src(&ctx, "let s = r#\"panic!(\"x\")\"#;").is_empty());
    }

    #[test]
    fn test_tree_files_get_hygiene_rules_only() {
        let test_file = FileContext {
            is_test_file: true,
            ..sim_ctx()
        };
        // Clocks, hash maps, unwraps: all fine in a test tree.
        assert!(check_src(
            &test_file,
            "fn t() { let m = HashMap::new(); let t = Instant::now(); x.unwrap(); }"
        )
        .is_empty());
        // …but a malformed directive still fails loudly.
        assert_eq!(
            ids(&check_src(
                &test_file,
                "// anoc-lint: allow(D002)\nfn t() {}"
            )),
            vec!["L000"]
        );
    }

    #[test]
    fn rule_table_is_consistent() {
        for r in &RULES {
            assert_eq!(rule(r.id).id, r.id);
        }
        assert_eq!(RULES.len(), 11);
    }
}
