//! The correctness family: C001–C003.

use super::{rule, FileContext, Violation};
use crate::lexer::{Lexed, TokKind};
use crate::syntax::{attribute_at, ItemTree};

/// C001 — library code must surface errors, not abort.
pub(super) fn check_c001(
    ctx: &FileContext,
    lexed: &Lexed,
    tree: &ItemTree,
    out: &mut Vec<Violation>,
) {
    if ctx.is_bin {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || tree.in_test(t.line) {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).map(|n| n.text == s).unwrap_or(false);
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        match t.text.as_str() {
            "unwrap" | "expect" if prev.map(|p| p.text == ".").unwrap_or(false) && next_is("(") => {
                out.push(Violation {
                    rule: rule("C001"),
                    line: t.line,
                    message: format!(
                        "`.{}()` in sim-critical library code; return a Result or \
                         document the invariant with an allow",
                        t.text
                    ),
                });
            }
            "panic" if next_is("!") => {
                out.push(Violation {
                    rule: rule("C001"),
                    line: t.line,
                    message: "`panic!` in sim-critical library code; return a Result or \
                              document the invariant with an allow"
                        .into(),
                });
            }
            _ => {}
        }
    }
}

/// C002: the crate root must open with `#![forbid(unsafe_code)]`.
pub(super) fn check_c002(lexed: &Lexed, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" {
            if let Some((attr, after)) = attribute_at(toks, i) {
                let texts: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
                if texts == ["forbid", "(", "unsafe_code", ")"] {
                    return;
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out.push(Violation {
        rule: rule("C002"),
        line: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
    });
}

/// File basenames whose whole content is a stats-accumulation path.
const STATS_FILES: [&str; 4] = ["stats.rs", "histogram.rs", "metrics.rs", "progress.rs"];

/// `as` targets that narrow a counter or rate (the PR 6 undercount class:
/// a 64-bit accumulator squeezed through 32 bits drops high-traffic runs'
/// precision silently).
const NARROW_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// All integer `as` targets, for the float→int truncation pattern.
const INT_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Float methods whose result is then commonly `as`-cast: `f.ceil() as u64`
/// maps NaN to 0 silently (the PR 6 NaN/undercount bug class).
const FLOAT_ROUNDERS: [&str; 4] = ["ceil", "floor", "round", "trunc"];

/// C003 — silently-narrowing casts in stats-accumulation paths. Applies to
/// sim-critical crates and `anoc-exec` (whose progress/rate code feeds the
/// run summaries).
pub(super) fn check_c003(
    ctx: &FileContext,
    lexed: &Lexed,
    tree: &ItemTree,
    out: &mut Vec<Violation>,
) {
    if !(ctx.sim_critical || ctx.crate_name == "exec") || ctx.is_bin {
        return;
    }
    let basename = ctx.path.rsplit('/').next().unwrap_or("");
    let file_is_stats = STATS_FILES.contains(&basename);
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || tree.in_test(t.line) {
            continue;
        }
        let Some(target) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        let in_stats_scope = file_is_stats
            || tree.enclosing_impl_name(t.line).is_some_and(|n| {
                n.contains("Stats") || n.contains("Tally") || n.contains("Histogram")
            });
        if !in_stats_scope {
            continue;
        }
        if NARROW_TARGETS.contains(&target.text.as_str()) {
            out.push(Violation {
                rule: rule("C003"),
                line: t.line,
                message: format!(
                    "`as {}` narrows a stats value; widen the accumulator or use a \
                     checked conversion (silent truncation is the PR-6 undercount class)",
                    target.text
                ),
            });
            continue;
        }
        // `x.ceil() as u64` — the preceding tokens are `. rounder ( )`.
        if INT_TARGETS.contains(&target.text.as_str())
            && i >= 4
            && toks[i - 1].text == ")"
            && toks[i - 2].text == "("
            && FLOAT_ROUNDERS.contains(&toks[i - 3].text.as_str())
            && toks[i - 4].text == "."
        {
            out.push(Violation {
                rule: rule("C003"),
                line: t.line,
                message: format!(
                    "`.{}() as {}` maps NaN to 0 silently; guard the float before \
                     casting or carry it as f64",
                    toks[i - 3].text,
                    target.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{check_src, ids, sim_ctx};
    use super::super::FileContext;

    #[test]
    fn c001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(ids(&check_src(&ctx, "let v = x.unwrap();")), vec!["C001"]);
        assert_eq!(
            ids(&check_src(&ctx, "let v = x.expect(\"invariant\");")),
            vec!["C001"]
        );
        assert_eq!(ids(&check_src(&ctx, "panic!(\"boom\");")), vec!["C001"]);
        assert!(check_src(
            &ctx,
            "let v = x.expect(\"q\"); // anoc-lint: allow(C001): slot is live by construction"
        )
        .is_empty());
        // unwrap_or / unwrap_or_default are fine.
        assert!(check_src(&ctx, "let v = x.unwrap_or(0).min(y.unwrap_or_default());").is_empty());
        // Test modules and test files may panic.
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests {\n #[test]\n fn t() { x.unwrap(); panic!(\"in test\"); }\n}"
        )
        .is_empty());
        let test_file = FileContext {
            is_test_file: true,
            ..sim_ctx()
        };
        assert!(check_src(&test_file, "fn t() { x.unwrap(); }").is_empty());
        let bin = FileContext {
            is_bin: true,
            ..sim_ctx()
        };
        assert!(check_src(&bin, "x.unwrap();").is_empty());
    }

    #[test]
    fn c002_hits_and_passes() {
        let root = FileContext {
            is_crate_root: true,
            ..FileContext::default()
        };
        assert_eq!(
            ids(&check_src(&root, "//! Docs only.\npub fn f() {}")),
            vec!["C002"]
        );
        assert!(check_src(&root, "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}").is_empty());
        // Non-root files are not required to carry the attribute.
        assert!(check_src(&sim_ctx(), "pub fn f() {}").is_empty());
    }

    fn stats_ctx() -> FileContext {
        FileContext {
            path: "crates/noc/src/stats.rs".into(),
            crate_name: "noc".into(),
            sim_critical: true,
            ..FileContext::default()
        }
    }

    #[test]
    fn c003_narrowing_in_stats_files_fires() {
        let vs = check_src(
            &stats_ctx(),
            "impl NetStats { fn rate(&self) -> u32 { self.delivered as u32 } }",
        );
        assert_eq!(ids(&vs), vec!["C003"]);
        // Widening casts are fine.
        assert!(check_src(
            &stats_ctx(),
            "impl NetStats { fn rate(&self) -> f64 { self.delivered as f64 } }"
        )
        .is_empty());
        assert!(check_src(
            &stats_ctx(),
            "fn idx(&self) -> usize { self.bucket as usize }"
        )
        .is_empty());
    }

    #[test]
    fn c003_impl_scope_detection_outside_stats_files() {
        // A Stats impl in a non-stats file is still covered…
        let vs = check_src(
            &sim_ctx(),
            "impl InjectTally { fn count(&self) -> u16 { self.n as u16 } }",
        );
        assert_eq!(ids(&vs), vec!["C003"]);
        // …but unrelated impls are not.
        assert!(check_src(
            &sim_ctx(),
            "impl Router { fn port(&self) -> u8 { self.p as u8 } }"
        )
        .is_empty());
    }

    #[test]
    fn c003_float_rounder_truncation_fires() {
        let vs = check_src(
            &stats_ctx(),
            "fn buckets(&self) -> u64 { (self.span / self.width).ceil() as u64 }",
        );
        assert_eq!(ids(&vs), vec!["C003"]);
        assert!(vs[0].message.contains("NaN"));
        // A rounder kept as float is fine.
        assert!(check_src(
            &stats_ctx(),
            "fn b(&self) -> f64 { (self.span / self.width).ceil() }"
        )
        .is_empty());
    }

    #[test]
    fn c003_applies_to_exec_but_not_harness() {
        let exec = FileContext {
            path: "crates/exec/src/progress.rs".into(),
            crate_name: "exec".into(),
            ..FileContext::default()
        };
        assert_eq!(
            ids(&check_src(&exec, "fn pct(&self) -> u8 { self.frac as u8 }")),
            vec!["C003"]
        );
        let harness = FileContext {
            path: "crates/harness/src/progress.rs".into(),
            crate_name: "harness".into(),
            ..FileContext::default()
        };
        assert!(check_src(&harness, "fn pct(&self) -> u8 { self.frac as u8 }").is_empty());
    }

    #[test]
    fn c003_suppresses_and_skips_tests() {
        assert!(check_src(
            &stats_ctx(),
            "fn r(&self) -> u32 { self.d as u32 } // anoc-lint: allow(C003): bounded by grid size"
        )
        .is_empty());
        assert!(check_src(
            &stats_ctx(),
            "#[cfg(test)]\nmod tests { fn f() { let x = big as u32; } }"
        )
        .is_empty());
    }
}
