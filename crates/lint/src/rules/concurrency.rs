//! The concurrency family: X001.
//!
//! `anoc-exec` owns the only cross-thread machinery in the workspace — the
//! `WorkerSet` mailbox state machines and the thread pool. Their
//! correctness argument (DESIGN.md §10) leans on Acquire/Release pairs for
//! every handoff, so a `Relaxed` ordering there is either a latent race or
//! a deliberate, documented exception. X001 makes the second case the only
//! representable one: every `Ordering::Relaxed` in the crate needs an
//! `allow(X001): <reason>` stating why no cross-thread ordering is needed.

use super::{rule, FileContext, Violation};
use crate::lexer::{Lexed, TokKind};

pub(super) fn check_x001(ctx: &FileContext, lexed: &Lexed, out: &mut Vec<Violation>) {
    if ctx.crate_name != "exec" {
        return;
    }
    // Deliberately *not* test-exempt: a test asserting on relaxed counters
    // can mask the very race it is meant to catch, so the audit reason is
    // required there too.
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && t.text == "Relaxed" {
            out.push(Violation {
                rule: rule("X001"),
                line: t.line,
                message: "`Ordering::Relaxed` in anoc-exec provides no cross-thread \
                          ordering for mailbox/state-machine handoff; use \
                          Acquire/Release or audit the site with `allow(X001): <why no \
                          ordering is needed>`"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{check_src, ids};
    use super::super::FileContext;

    fn exec_ctx() -> FileContext {
        FileContext {
            path: "crates/exec/src/pool.rs".into(),
            crate_name: "exec".into(),
            ..FileContext::default()
        }
    }

    #[test]
    fn x001_fires_in_exec_even_in_tests() {
        assert_eq!(
            ids(&check_src(
                &exec_ctx(),
                "let v = seq.load(Ordering::Relaxed);"
            )),
            vec!["X001"]
        );
        assert_eq!(
            ids(&check_src(
                &exec_ctx(),
                "#[cfg(test)]\nmod tests { fn f() { n.fetch_add(1, Ordering::Relaxed); } }"
            )),
            vec!["X001"]
        );
    }

    #[test]
    fn x001_suppresses_with_reason_and_passes_elsewhere() {
        assert!(check_src(
            &exec_ctx(),
            "PUT_SEQ.fetch_add(1, Ordering::Relaxed) // anoc-lint: allow(X001): uniqueness only"
        )
        .is_empty());
        assert!(check_src(&exec_ctx(), "slot.store(DONE, Ordering::Release);").is_empty());
        // Other crates are out of scope for X001.
        let harness = FileContext {
            crate_name: "harness".into(),
            ..FileContext::default()
        };
        assert!(check_src(&harness, "n.load(Ordering::Relaxed);").is_empty());
    }
}
