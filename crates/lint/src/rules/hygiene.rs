//! The hygiene family: L000 and H001.

use super::{rule, FileContext, Violation};
use crate::lexer::{Lexed, TokKind};
use crate::syntax::ItemTree;

/// L000 — every defect in the directive/scope layer itself: malformed
/// `anoc-lint:` comments, `phase()` annotations with no `fn` to bind to,
/// and unbalanced braces (which would silently mis-scope every other
/// rule). Runs on every file, test trees included, so a typo'd directive
/// never fails open.
pub(super) fn check_l000(lexed: &Lexed, tree: &ItemTree, out: &mut Vec<Violation>) {
    for m in &lexed.malformed {
        out.push(Violation {
            rule: rule("L000"),
            line: m.line,
            message: format!("malformed anoc-lint directive: {}", m.detail),
        });
    }
    for &line in &tree.dangling_phase {
        out.push(Violation {
            rule: rule("L000"),
            line,
            message: "`phase(...)` annotation with no following `fn` to attach to".into(),
        });
    }
    for b in &tree.balance_errors {
        out.push(Violation {
            rule: rule("L000"),
            line: b.line,
            message: format!("unbalanced braces: {}", b.detail),
        });
    }
}

/// H001 — output flows through stats/progress, never stdout. Library code
/// only: bins, test scopes and test-tree files may print.
pub(super) fn check_h001(
    ctx: &FileContext,
    lexed: &Lexed,
    tree: &ItemTree,
    out: &mut Vec<Violation>,
) {
    if ctx.is_bin || ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || tree.in_test(t.line) {
            continue;
        }
        let next_is_bang = toks.get(i + 1).map(|n| n.text == "!").unwrap_or(false);
        if (t.text == "println" || t.text == "eprintln") && next_is_bang {
            out.push(Violation {
                rule: rule("H001"),
                line: t.line,
                message: format!(
                    "`{}!` in sim-critical library code; emit through stats or \
                     the progress reporter",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{check_src, ids, sim_ctx};
    use super::super::Severity;

    #[test]
    fn h001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "println!(\"latency {x}\");")),
            vec!["H001"]
        );
        assert_eq!(ids(&check_src(&ctx, "eprintln!(\"warn\");")), vec!["H001"]);
        assert!(check_src(
            &ctx,
            "eprintln!(\"x\"); // anoc-lint: allow(H001): debug hook behind env var"
        )
        .is_empty());
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests { fn f() { println!(\"dbg\"); } }"
        )
        .is_empty());
        // format!/write! are fine.
        assert!(check_src(&ctx, "let s = format!(\"{x}\");").is_empty());
    }

    #[test]
    fn l000_malformed_directive_is_an_error() {
        let vs = check_src(&sim_ctx(), "// anoc-lint: allow(D002)\nlet m = 1;");
        assert_eq!(ids(&vs), vec!["L000"]);
        assert_eq!(vs[0].rule.severity, Severity::Error);
    }

    #[test]
    fn l000_unbalanced_braces_are_reported() {
        let vs = check_src(&sim_ctx(), "fn f() { if x { }\n");
        assert!(ids(&vs).contains(&"L000"));
        assert!(check_src(&sim_ctx(), "fn f() { if x { } }\n").is_empty());
    }
}
