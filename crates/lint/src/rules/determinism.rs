//! The determinism family: D001–D005.
//!
//! Everything here exists because the result cache and the golden
//! fingerprint assume `(config, workload, seed)` → identical bits. Clocks,
//! hash iteration order, ambient entropy and phase-discipline violations in
//! the sharded kernel all break that silently.

use super::{rule, FileContext, RuleConfig, Violation};
use crate::lexer::{Lexed, TokKind};
use crate::syntax::ItemTree;
use std::collections::BTreeSet;

/// RNG types/constructors that are nondeterministic by design — never
/// acceptable in a sim-critical crate, tests included.
const AMBIENT_RNG_IDENTS: [&str; 7] = [
    "OsRng",
    "StdRng",
    "SmallRng",
    "ThreadRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Seeded-Pcg32 constructors audited by D004: each construction site in
/// library code must carry an `rng-site` annotation explaining why its
/// seeding is deterministic.
const PCG_CONSTRUCTORS: [&str; 2] = ["new", "seed_from_u64"];

/// The one file allowed to construct `Pcg32` without annotation: the RNG
/// implementation itself.
const RNG_IMPL_PATH: &str = "crates/core/src/rng.rs";

pub(super) fn check(
    ctx: &FileContext,
    lexed: &Lexed,
    tree: &ItemTree,
    cfg: &RuleConfig,
    out: &mut Vec<Violation>,
) {
    let in_test = |line: u32| tree.in_test(line);
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let next = toks.get(i + 1);
        let next_is = |s: &str| next.map(|n| n.text == s).unwrap_or(false);
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // D001 — applies everywhere in a sim-critical crate, tests
                // included: a deterministic kernel never consults the clock.
                "Instant"
                    if next_is("::")
                        && toks.get(i + 2).map(|n| n.text == "now").unwrap_or(false) =>
                {
                    out.push(Violation {
                        rule: rule("D001"),
                        line: t.line,
                        message: "`Instant::now` in a sim-critical crate; wall-clock reads \
                                  belong in exec/harness progress paths"
                            .into(),
                    });
                }
                "SystemTime" | "thread_rng" => {
                    out.push(Violation {
                        rule: rule("D001"),
                        line: t.line,
                        message: format!(
                            "`{}` in a sim-critical crate; use the seeded RNG plumbed \
                             through the config",
                            t.text
                        ),
                    });
                }
                // D002 — hash iteration order is nondeterministic; tests are
                // included because trace/stat comparisons iterate helpers.
                "HashMap" | "HashSet" => {
                    out.push(Violation {
                        rule: rule("D002"),
                        line: t.line,
                        message: format!(
                            "`{}` in sim-critical crate `{}`: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet or a Vec-indexed \
                             structure",
                            t.text, ctx.crate_name
                        ),
                    });
                }
                // D004a — ambient entropy sources, tests included: even a
                // test drawing from the OS RNG cannot reproduce a failure.
                id if AMBIENT_RNG_IDENTS.contains(&id) => {
                    out.push(Violation {
                        rule: rule("D004"),
                        line: t.line,
                        message: format!(
                            "`{}` is ambient entropy; every sim-critical draw must come \
                             from a seeded Pcg32 at an annotated rng-site",
                            t.text
                        ),
                    });
                }
                "rand" if next_is("::") => {
                    out.push(Violation {
                        rule: rule("D004"),
                        line: t.line,
                        message: "the `rand` crate is off-limits in sim-critical code; use \
                                  the in-repo seeded Pcg32"
                            .into(),
                    });
                }
                // D004b — seeded constructions are fine, but only at sites
                // annotated with their determinism argument, so fault plans
                // and future warmup-snapshot serialization can enumerate
                // every RNG stream in the workspace.
                "Pcg32"
                    if !ctx.is_bin
                        && ctx.path != RNG_IMPL_PATH
                        && !in_test(t.line)
                        && next_is("::")
                        && toks
                            .get(i + 2)
                            .map(|n| PCG_CONSTRUCTORS.contains(&n.text.as_str()))
                            .unwrap_or(false)
                        && !lexed.is_rng_site(t.line) =>
                {
                    out.push(Violation {
                        rule: rule("D004"),
                        line: t.line,
                        message: format!(
                            "`Pcg32::{}` outside a sanctioned site; annotate the \
                             construction with `// anoc-lint: rng-site: <why this seeding \
                             is deterministic>`",
                            toks.get(i + 2).map(|n| n.text.as_str()).unwrap_or("new")
                        ),
                    });
                }
                _ => {}
            },
            // D003 — exact float equality: flagged when either side is a
            // float literal (type-level detection needs a real type checker).
            TokKind::Punct if (t.text == "==" || t.text == "!=") && !in_test(t.line) => {
                let float_adjacent = prev.map(|p| p.kind == TokKind::Float).unwrap_or(false)
                    || next.map(|n| n.kind == TokKind::Float).unwrap_or(false);
                if float_adjacent {
                    out.push(Violation {
                        rule: rule("D003"),
                        line: t.line,
                        message: format!(
                            "float `{}` comparison against a literal; compare with an \
                             epsilon or document the exact-value sentinel with an allow",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    check_d005(tree, cfg, out);
}

/// D005 — phase discipline: no function reachable from a `phase(A)` root
/// may call a serial-edge mutator. Reachability is the name-level call
/// graph from the item tree: conservative (same-named fns merge), so this
/// can over-report but never silently under-report.
fn check_d005(tree: &ItemTree, cfg: &RuleConfig, out: &mut Vec<Violation>) {
    let phases: BTreeSet<&str> = tree
        .scopes
        .iter()
        .filter_map(|s| s.phase.as_deref())
        .collect();
    let mut seen: BTreeSet<(u32, &str)> = BTreeSet::new();
    for phase in phases {
        for (scope, root) in tree.phase_reachable(phase) {
            let s = &tree.scopes[scope];
            if s.is_test {
                continue;
            }
            for call in &s.calls {
                if cfg.phase_deny.iter().any(|d| d == &call.name)
                    && seen.insert((call.line, call.name.as_str()))
                {
                    out.push(Violation {
                        rule: rule("D005"),
                        line: call.line,
                        message: format!(
                            "`{}` mutates current-edge state but is reachable from \
                             phase({}) root `{}` (via `{}`); parallel-phase code may \
                             only read last-edge state (DESIGN.md §10)",
                            call.name, phase, tree.scopes[root].name, s.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{check_src, ids, sim_ctx};
    use super::super::FileContext;

    #[test]
    fn d001_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "let t = Instant::now();")),
            vec!["D001"]
        );
        assert_eq!(
            ids(&check_src(
                &ctx,
                "let r = thread_rng(); let s = SystemTime::now();"
            )),
            vec!["D001", "D001"]
        );
        assert!(check_src(
            &ctx,
            "let t = Instant::now(); // anoc-lint: allow(D001): test-only timing probe"
        )
        .is_empty());
        // An `Instant` that is not `::now` (e.g. stored value) passes.
        assert!(check_src(&ctx, "fn f(t: Instant) -> Instant { t }").is_empty());
        // Non-sim crates may read the clock.
        let exec = FileContext {
            crate_name: "exec".into(),
            sim_critical: false,
            ..FileContext::default()
        };
        assert!(check_src(&exec, "let t = Instant::now();").is_empty());
    }

    #[test]
    fn d002_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "use std::collections::HashMap;")),
            vec!["D002"]
        );
        assert!(check_src(
            &ctx,
            "// anoc-lint: allow(D002): ordering never observed\nlet m = HashSet::new();"
        )
        .is_empty());
        assert!(check_src(&ctx, "use std::collections::BTreeMap;").is_empty());
        // D002 applies inside #[cfg(test)] too — test helpers can leak order.
        assert_eq!(
            ids(&check_src(
                &ctx,
                "#[cfg(test)]\nmod tests { fn f() { let m = HashMap::new(); } }"
            )),
            vec!["D002"]
        );
    }

    #[test]
    fn d003_hits_suppresses_and_passes() {
        let ctx = sim_ctx();
        assert_eq!(ids(&check_src(&ctx, "if x == 0.0 { y() }")), vec!["D003"]);
        assert_eq!(ids(&check_src(&ctx, "if 1e-9 != x { y() }")), vec!["D003"]);
        assert!(check_src(
            &ctx,
            "if x == 0.0 { y() } // anoc-lint: allow(D003): exact zero sentinel"
        )
        .is_empty());
        assert!(check_src(&ctx, "if x == 0 { y() }").is_empty());
        assert!(check_src(&ctx, "if (x - 0.5).abs() < 1e-9 { y() }").is_empty());
        // Test code may compare floats exactly.
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests { fn f() { assert!(q == 1.0); } }"
        )
        .is_empty());
    }

    #[test]
    fn d004_ambient_entropy_always_fires() {
        let ctx = sim_ctx();
        assert_eq!(ids(&check_src(&ctx, "let r = OsRng;")), vec!["D004"]);
        assert_eq!(
            ids(&check_src(&ctx, "let r = SmallRng::from_entropy();")),
            vec!["D004", "D004"]
        );
        assert_eq!(
            ids(&check_src(&ctx, "let x = rand::random();")),
            vec!["D004"]
        );
        // Even in test modules — an OS-entropy test is unreproducible.
        assert_eq!(
            ids(&check_src(
                &ctx,
                "#[cfg(test)]\nmod tests { fn f() { let r = OsRng; } }"
            )),
            vec!["D004"]
        );
    }

    #[test]
    fn d004_construction_needs_rng_site() {
        let ctx = sim_ctx();
        assert_eq!(
            ids(&check_src(&ctx, "let r = Pcg32::seed_from_u64(7);")),
            vec!["D004"]
        );
        assert_eq!(
            ids(&check_src(&ctx, "let r = Pcg32::new(seed, stream);")),
            vec!["D004"]
        );
        // Annotated sites pass (trailing or preceding).
        assert!(check_src(
            &ctx,
            "// anoc-lint: rng-site: dedicated fault stream, seeded from the plan\n\
             let r = Pcg32::seed_from_u64(plan.seed);"
        )
        .is_empty());
        // Drawing from an existing RNG is free — only construction is audited.
        assert!(check_src(&ctx, "let v = rng.next_u32();").is_empty());
        // Test code may construct ad-hoc seeded RNGs.
        assert!(check_src(
            &ctx,
            "#[cfg(test)]\nmod tests { fn f() { let r = Pcg32::seed_from_u64(1); } }"
        )
        .is_empty());
        // The RNG implementation itself is exempt.
        let rng_impl = FileContext {
            path: "crates/core/src/rng.rs".into(),
            crate_name: "core".into(),
            sim_critical: true,
            ..FileContext::default()
        };
        assert!(check_src(&rng_impl, "Pcg32::new(seed, stream)").is_empty());
    }

    #[test]
    fn d005_reaches_through_helpers() {
        let ctx = sim_ctx();
        let src = "\
// anoc-lint: phase(A)
fn phase_a(&mut self) { self.helper(); }
fn helper(&mut self) { self.eject_flit(0); }
";
        let vs = check_src(&ctx, src);
        assert_eq!(ids(&vs), vec!["D005"]);
        assert_eq!(vs[0].line, 3);
        assert!(vs[0].message.contains("phase_a"));
        // The same mutator called from an unannotated fn is fine.
        assert!(check_src(&ctx, "fn edge(&mut self) { self.eject_flit(0); }").is_empty());
        // A phase root with a clean call chain is fine.
        assert!(check_src(
            &ctx,
            "// anoc-lint: phase(A)\nfn phase_a(&self) { self.read_only(); }\nfn read_only(&self) {}"
        )
        .is_empty());
    }

    #[test]
    fn d005_direct_call_from_root_fires() {
        let vs = check_src(
            &sim_ctx(),
            "// anoc-lint: phase(A)\nfn phase_a(&mut self) { self.schedule(1); }",
        );
        assert_eq!(ids(&vs), vec!["D005"]);
    }

    #[test]
    fn dangling_phase_annotation_is_l000() {
        let vs = check_src(&sim_ctx(), "fn f() {}\n// anoc-lint: phase(A)\n");
        assert_eq!(ids(&vs), vec!["L000"]);
    }
}
