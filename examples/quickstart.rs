//! Quickstart: simulate one benchmark under all five mechanisms and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use approx_noc::harness::runner::run_benchmark;
use approx_noc::harness::{Mechanism, SystemConfig};
use approx_noc::traffic::Benchmark;

fn main() {
    let config = SystemConfig::paper().with_sim_cycles(20_000);
    println!("APPROX-NoC quickstart — Table 1 configuration:");
    for (k, v) in config.table1_rows() {
        println!("  {k:<34} {v}");
    }

    let benchmark = Benchmark::Ssca2;
    println!(
        "\nSimulating {benchmark} under each mechanism ({} measured cycles):",
        config.sim_cycles
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "mechanism", "latency(cyc)", "data flits", "comp.ratio", "quality"
    );
    let mut baseline_latency = None;
    for mechanism in Mechanism::ALL {
        let r = run_benchmark(benchmark, mechanism, &config, 42);
        if mechanism == Mechanism::Baseline {
            baseline_latency = Some(r.avg_packet_latency());
        }
        println!(
            "{:<10} {:>12.2} {:>12.3} {:>12.3} {:>9.2}%",
            mechanism.name(),
            r.avg_packet_latency(),
            r.stats.normalized_data_flits(),
            r.stats.encode.compression_ratio(),
            r.data_quality() * 100.0
        );
    }
    if let Some(base) = baseline_latency {
        let vaxx = run_benchmark(benchmark, Mechanism::FpVaxx, &config, 42).avg_packet_latency();
        println!(
            "\nFP-VAXX cuts {benchmark}'s average packet latency by {:.1}% vs the baseline.",
            (base - vaxx) / base * 100.0
        );
    }
}
