//! Runtime quality-of-service control of the error threshold.
//!
//! §1 of the paper: the error threshold "can be determined by the compiler or
//! annotated by the programmer and can be dynamically adjusted at run time";
//! §2.2 requires QoS guarantees on the data being supplied. This example
//! closes that loop: every epoch the controller observes the realized data
//! quality of an FP-VAXX link carrying ssca2-shaped traffic and adjusts the
//! threshold — harvesting compression while honouring a 97% quality floor,
//! and backing off sharply when the floor is violated (simulated here by a
//! phase of noisy, hard-to-approximate data judged by a stricter metric).
//!
//! ```sh
//! cargo run --release --example qos_control
//! ```

use approx_noc::compression::fp::{FpDecoder, FpEncoder};
use approx_noc::core::avcl::{Avcl, MaskPolicy};
use approx_noc::core::codec::{BlockDecoder, BlockEncoder};
use approx_noc::core::control::QualityController;
use approx_noc::core::data::NodeId;
use approx_noc::core::metrics::QualityAccumulator;
use approx_noc::traffic::{Benchmark, DataModel};

fn main() {
    let mut controller = QualityController::paper_defaults();
    // Use the paper's (relaxed) mask arithmetic so the threshold bite is
    // visible — the controller is what keeps it safe.
    let mut encoder = FpEncoder::fp_vaxx(Avcl::with_policy(
        controller.threshold(),
        MaskPolicy::Relaxed,
    ));
    let mut decoder = FpDecoder::new();
    let mut model = DataModel::new(Benchmark::Ssca2, 17);

    println!("epoch  threshold%  realized-quality  encoded-fraction");
    for epoch in 0..12 {
        let mut quality = QualityAccumulator::new();
        let mut stats = approx_noc::core::codec::EncodeStats::default();
        for _ in 0..200 {
            let block = model.next_block(true);
            let encoded = encoder.encode(&block, NodeId(1));
            stats.absorb_block(&encoded);
            let decoded = decoder.decode(&encoded, NodeId(0)).block;
            quality.record_block(&block, &decoded);
        }
        // Epochs 4-6: a demanding phase — judge quality with a 12x stricter
        // lens (e.g. the application entered a precision-critical region).
        let observed = if (4..7).contains(&epoch) {
            1.0 - quality.mean_relative_error() * 12.0
        } else {
            quality.quality()
        };
        println!(
            "{epoch:>5} {:>10} {:>17.4} {:>17.3}",
            controller.percent(),
            observed,
            stats.encoded_fraction()
        );
        let next = controller.observe(observed);
        encoder.set_avcl(Avcl::with_policy(next, MaskPolicy::Relaxed));
    }
    println!(
        "\ncontroller settled at {}% with a {:.0}% quality floor",
        controller.percent(),
        controller.target_quality() * 100.0
    );
}
