//! Image/video processing through approximate communication — the class of
//! workload the paper's introduction motivates (and Figure 17 demonstrates).
//!
//! Tracks body-part blobs across frames whose pixel data crosses an FP-VAXX
//! link, writes precise/approximate PGM frames side by side, and runs an
//! x264-style DCT transform on approximated residuals, reporting PSNR. Also
//! demonstrates the §7 window-based error budget.
//!
//! ```sh
//! cargo run --release --example image_pipeline [output-dir]
//! ```

use approx_noc::apps::bodytrack::{frame_to_pgm, Bodytrack};
use approx_noc::apps::kernel::evaluate;
use approx_noc::apps::transport::{ApproxTransport, BlockTransport};
use approx_noc::apps::x264::X264;
use approx_noc::compression::fp::{FpDecoder, FpEncoder};
use approx_noc::core::metrics::psnr;
use approx_noc::core::threshold::ErrorThreshold;
use approx_noc::core::window::WindowBudget;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/image_pipeline".into());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let threshold = ErrorThreshold::from_percent(10).expect("10% is valid");

    // --- bodytrack (Figure 17) ------------------------------------------
    let tracker = Bodytrack::new(64, 3, 12, 9);
    let mut transport = ApproxTransport::fp_vaxx(threshold);
    let (_, _, vector_diff) = evaluate(&tracker, &mut transport);
    println!(
        "bodytrack output-vector difference at 10%: {:.4}% (paper: 2.4%)",
        vector_diff * 100.0
    );
    let (frames, _) = tracker.render();
    let frame = &frames[frames.len() / 2];
    let mut t2 = ApproxTransport::fp_vaxx(threshold);
    let approx_frame = t2.transmit_f32(frame);
    let p_path = format!("{out_dir}/precise.pgm");
    let a_path = format!("{out_dir}/approx.pgm");
    std::fs::write(&p_path, frame_to_pgm(frame, tracker.size)).expect("write precise");
    std::fs::write(&a_path, frame_to_pgm(&approx_frame, tracker.size)).expect("write approx");
    let frame_f64: Vec<f64> = frame.iter().map(|p| *p as f64).collect();
    let approx_f64: Vec<f64> = approx_frame.iter().map(|p| *p as f64).collect();
    println!(
        "frame PSNR precise-vs-approx: {:.1} dB  ({p_path}, {a_path})",
        psnr(&frame_f64, &approx_f64, 255.0)
    );

    // --- x264 transform coding -------------------------------------------
    let codec = X264::new(64, 3);
    let mut transport = ApproxTransport::fp_vaxx(threshold);
    let (precise, approx, rel_rmse) = evaluate(&codec, &mut transport);
    println!(
        "x264 reconstruction PSNR: precise-pipeline vs approximate-input {:.1} dB (rel. RMSE {:.3})",
        psnr(&precise, &approx, 255.0),
        rel_rmse
    );

    // --- window-based error budget (§7 future work) ----------------------
    // Per-frame error budgets suit video: pool the tolerance over a window.
    let plain = ApproxTransport::fp_vaxx(threshold);
    drop(plain);
    let mut windowed = ApproxTransport::from_codecs(
        Box::new(FpEncoder::fp_vaxx_windowed(WindowBudget::new(16, 10))),
        Box::new(FpDecoder::new()),
    );
    let (_, _, windowed_diff) = evaluate(&tracker, &mut windowed);
    println!(
        "bodytrack with a 16-word window budget: {:.4}% vector difference (more matches, same average error)",
        windowed_diff * 100.0
    );
}
