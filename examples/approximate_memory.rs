//! Approximate data responses in a multi-core cache hierarchy — the paper's
//! §5.4 methodology ("we emulate packet response whenever a miss happens").
//!
//! Sixteen cores with private L1 caches read a shared float array; every
//! miss pulls the cache line through a DI-VAXX value path. The annotated
//! (approximable) half of memory arrives within the error threshold while
//! the precise half is bit-exact — APPROX-NoC working in synergy with
//! precise storage, as §2.2 requires.
//!
//! ```sh
//! cargo run --release --example approximate_memory
//! ```

use approx_noc::apps::cachesim::{CacheConfig, CacheSim, Memory};
use approx_noc::apps::transport::ApproxTransport;
use approx_noc::core::data::DataType;
use approx_noc::core::rng::Pcg32;
use approx_noc::core::threshold::ErrorThreshold;

fn main() {
    let config = CacheConfig::paper();
    println!(
        "cache hierarchy: {} cores x {} KB, {}-way, {} B lines",
        config.cores,
        config.capacity_bytes / 1024,
        config.ways,
        config.line_bytes
    );

    // Shared array: the first half is annotated approximable (e.g. pixel or
    // weight data), the second half must stay precise (e.g. indices).
    let words = 64 * 1024;
    let mut memory = Memory::new(words, DataType::F32).with_approx_range(0, words / 2);
    let mut rng = Pcg32::seed_from_u64(21);
    for a in 0..words {
        memory.set_f32(a, 100.0 + rng.f32() * 900.0);
    }

    let mut sim = CacheSim::new(config);
    let mut transport =
        ApproxTransport::di_vaxx(ErrorThreshold::from_percent(10).expect("10% is valid"));

    let mut max_err_approx: f64 = 0.0;
    let mut exact_words = 0u64;
    let accesses = 200_000;
    for i in 0..accesses {
        let core = (i % config.cores as u64) as usize;
        let addr = (rng.below(words as u32)) as usize;
        let seen = sim.read_f32(core, addr, &memory, &mut transport) as f64;
        let truth = memory.f32_at(addr) as f64;
        let err = (seen - truth).abs() / truth;
        if addr < words / 2 {
            max_err_approx = max_err_approx.max(err);
        } else {
            assert_eq!(seen, truth, "precise region corrupted");
            exact_words += 1;
        }
    }

    let stats = sim.stats();
    println!(
        "{accesses} accesses: {:.1}% miss ratio, {} block transfers over the NoC",
        stats.miss_ratio() * 100.0,
        stats.transfers
    );
    println!(
        "approximable region: worst-case relative error {:.2}% (threshold 10%)",
        max_err_approx * 100.0
    );
    println!("precise region: {exact_words} reads, all bit-exact");
}
