//! Big-data graph analytics through an approximate NoC — the paper's
//! headline SSCA2 scenario.
//!
//! Builds an R-MAT small-world graph, computes betweenness centrality
//! precisely and with the pairwise dependency vectors routed through a
//! DI-VAXX value path, then shows that (a) the top-ranked entities are
//! preserved and (b) the NoC-level latency win on ssca2-shaped traffic.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use approx_noc::apps::graph::{betweenness_centrality, Graph};
use approx_noc::apps::transport::{ApproxTransport, PreciseTransport};
use approx_noc::core::metrics::mean_relative_error;
use approx_noc::core::threshold::ErrorThreshold;
use approx_noc::harness::runner::run_benchmark;
use approx_noc::harness::{Mechanism, SystemConfig};
use approx_noc::traffic::Benchmark;

fn main() {
    // --- Application-level accuracy -------------------------------------
    let graph = Graph::rmat(256, 1024, 7);
    println!(
        "R-MAT graph: {} vertices, {} edges (max degree {})",
        graph.len(),
        graph.num_edges(),
        (0..graph.len()).map(|v| graph.degree(v)).max().unwrap_or(0)
    );

    let _ = PreciseTransport;
    let exact = betweenness_centrality(&graph, usize::MAX, None);
    let threshold = ErrorThreshold::from_percent(10).expect("10% is valid");
    let mut transport = ApproxTransport::di_vaxx(threshold);
    let approx = betweenness_centrality(&graph, usize::MAX, Some(&mut transport));

    let err = mean_relative_error(&exact, &approx, 1.0);
    println!(
        "pair-wise BC error at a 10% data threshold: {:.3}%",
        err * 100.0
    );

    let top = |bc: &[f64]| {
        let mut idx: Vec<usize> = (0..bc.len()).collect();
        idx.sort_by(|a, b| bc[*b].partial_cmp(&bc[*a]).expect("finite BC"));
        idx.truncate(10);
        idx
    };
    let (te, ta) = (top(&exact), top(&approx));
    let overlap = te.iter().filter(|v| ta.contains(v)).count();
    println!("top-10 key entities preserved: {overlap}/10");

    // --- Network-level benefit ------------------------------------------
    let config = SystemConfig::paper().with_sim_cycles(15_000);
    let base = run_benchmark(Benchmark::Ssca2, Mechanism::DiComp, &config, 11);
    let vaxx = run_benchmark(Benchmark::Ssca2, Mechanism::DiVaxx, &config, 11);
    let fp = run_benchmark(Benchmark::Ssca2, Mechanism::FpVaxx, &config, 11);
    println!(
        "\nssca2 traffic, avg packet latency: DI-COMP {:.1} | DI-VAXX {:.1} | FP-VAXX {:.1} cycles",
        base.avg_packet_latency(),
        vaxx.avg_packet_latency(),
        fp.avg_packet_latency()
    );
    println!(
        "latency reduction vs exact compression: {:.1}% (paper reports 36.7% for its graph workload)",
        (base.avg_packet_latency() - fp.avg_packet_latency()) / base.avg_packet_latency() * 100.0
    );
}
